//! The model checker's instrumented environment.
//!
//! [`CheckerEnv`] is the runtime a guest program executes against while
//! being model checked. It routes every operation into the Px86sim
//! simulator (`jaaru-tso`), consults the decision log at each
//! nondeterministic point (failure injection, multi-store loads), and
//! unwinds the execution with a typed panic on simulated power failures
//! and on detected bugs.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::panic::{panic_any, Location};
use std::sync::Arc;

use jaaru_analysis::{Diagnostic, DiagnosticKind, DiagnosticSet};
use jaaru_pmem::{PmAddr, CACHE_LINE_SIZE, NULL_PAGE_SIZE};
use jaaru_tso::{
    do_read, read_pre_failure, CurrentRead, ExecutionStorage, OpTrace, RfCandidate, RfSource,
    SourceLoc, ThreadId, TraceOpKind, TsoMachine,
};

use crate::config::Config;
use crate::decision::{ChoiceKind, DecisionLog};
use crate::report::{BugKind, RaceCandidate, RaceReport};
use crate::signal::{AbortSignal, CrashSignal};
use crate::snapshot::{estimate_bytes, CheckerSnapshot};
use crate::PmEnv;

/// Cap on remembered race reports (debugging aid, not a bug list).
const MAX_RACES: usize = 256;

/// The persistence-slicing oracle consulted at crash-point expansion.
///
/// Wraps the frozen recovery read footprint of the current fixpoint
/// round: the set of cache lines any recovery execution has been
/// observed to read. An injection point is *invisible* when nothing
/// since the previous consulted point touched a footprint line —
/// crashing there is behaviorally identical to crashing at that
/// previous point, so the explorer keeps only the representative (see
/// [`injection_point_impl`](CheckerEnv::injection_point_impl) and
/// DESIGN.md, "Static persistence slicing" for the soundness argument).
#[derive(Clone, Debug)]
pub(crate) struct PruneOracle {
    footprint: Arc<HashSet<u64>>,
}

impl PruneOracle {
    pub(crate) fn new(footprint: HashSet<u64>) -> Self {
        PruneOracle {
            footprint: Arc::new(footprint),
        }
    }

    /// Whether any of `touched` is a line recovery can observe.
    fn visible(&self, touched: &HashSet<u64>) -> bool {
        touched.iter().any(|l| self.footprint.contains(l))
    }
}

struct Inner {
    machine: TsoMachine,
    /// Storage of every crashed execution, oldest first (the paper's
    /// `exec` stack minus the running execution).
    stack: Vec<ExecutionStorage>,
    decisions: DecisionLog,

    exec_index: usize,
    ops: u64,
    bump: u64,
    writes_since_point: bool,
    any_writes_this_exec: bool,
    points_this_exec: usize,
    /// Injection points per execution (index = execution).
    points_per_exec: Vec<usize>,
    /// Injection-point ordinal at which each failure was injected.
    crash_points: Vec<usize>,

    current_tid: ThreadId,
    next_tid: u32,

    races: Vec<RaceReport>,
    race_keys: HashSet<String>,
    load_choice_points: u64,
    max_rf_set: usize,

    /// Perf-warning diagnostics (redundant flushes/fences), deduplicated
    /// by site through the shared [`DiagnosticSet`] fold.
    diagnostics: DiagnosticSet,
    /// Stores and flushes since the last fence (redundant-fence check).
    work_since_fence: u64,
    /// Per-execution operation traces for the lint engine (empty unless
    /// [`Config::lints`] is on); the last entry is the running execution.
    op_traces: Vec<OpTrace>,

    /// Cache lines stored to or flushed since the last *consulted*
    /// injection point (maintained only while a [`PruneOracle`] is
    /// installed; volatile — reset per point and per execution).
    touched: HashSet<u64>,
    /// Lines with a clflushopt issued but not yet applied by a fence,
    /// keyed by thread: the fence applying them counts as touching them
    /// (maintained only while pruning; volatile).
    parked: HashMap<u32, HashSet<u64>>,
    /// Per-line counts of recovery reads: post-failure loads that missed
    /// the running execution's own state and consulted pre-failure
    /// storage. Always collected (cheap); accumulates across executions
    /// and participates in snapshots.
    recovery_reads: HashMap<u64, u64>,
    /// Injection points the prune oracle skipped in this scenario.
    points_skipped: u64,
}

/// Per-scenario results harvested by the explorer after a run.
pub(crate) struct ScenarioRecord {
    pub decisions: DecisionLog,
    pub crash_points: Vec<usize>,
    pub points_per_exec: Vec<usize>,
    pub races: Vec<RaceReport>,
    pub diagnostics: Vec<Diagnostic>,
    pub op_traces: Vec<OpTrace>,
    pub load_choice_points: u64,
    pub max_rf_set: usize,
    /// Per-line recovery read counts, sorted by line.
    pub recovery_reads: Vec<(u64, u64)>,
    /// Injection points skipped by the prune oracle.
    pub points_skipped: u64,
}

/// The instrumented environment for one failure scenario.
pub(crate) struct CheckerEnv {
    inner: RefCell<Inner>,
    pool_size: u64,
    max_failures: usize,
    inject_at_end: bool,
    skip_unchanged: bool,
    max_ops: u64,
    flag_races: bool,
    flag_perf: bool,
    flag_lints: bool,
    /// Override for recorded trace sites while executing a composite
    /// primitive (locked RMW): the constituent ops carry the guest call
    /// site of the RMW, not the environment-internal one.
    lint_loc: Cell<Option<SourceLoc>>,
    /// The frozen recovery-read footprint of the current fixpoint round;
    /// `None` disables pruning (replay always runs with `None`).
    prune: Option<PruneOracle>,
}

impl CheckerEnv {
    pub(crate) fn new(config: &Config, decisions: DecisionLog) -> Self {
        CheckerEnv {
            inner: RefCell::new(Inner {
                machine: TsoMachine::new(config.eviction_value()),
                stack: Vec::new(),
                decisions,
                exec_index: 0,
                ops: 0,
                bump: 2 * CACHE_LINE_SIZE as u64,
                writes_since_point: false,
                any_writes_this_exec: false,
                points_this_exec: 0,
                points_per_exec: Vec::new(),
                crash_points: Vec::new(),
                current_tid: ThreadId(0),
                next_tid: 1,
                races: Vec::new(),
                race_keys: HashSet::new(),
                load_choice_points: 0,
                max_rf_set: 1,
                diagnostics: DiagnosticSet::new(),
                work_since_fence: 0,
                op_traces: if config.trace_ops_value() {
                    vec![OpTrace::new()]
                } else {
                    Vec::new()
                },
                touched: HashSet::new(),
                parked: HashMap::new(),
                recovery_reads: HashMap::new(),
                points_skipped: 0,
            }),
            pool_size: config.pool_size_value() as u64,
            max_failures: config.failure_limit(),
            inject_at_end: config.inject_at_end_value(),
            skip_unchanged: config.skip_unchanged_value(),
            max_ops: config.op_limit(),
            // The localization pass correlates lint candidates with
            // read-from evidence, so analysis passes imply race flagging.
            flag_races: config.flag_races_value() || config.trace_ops_value(),
            flag_perf: config.flag_perf_issues_value(),
            flag_lints: config.trace_ops_value(),
            lint_loc: Cell::new(None),
            prune: None,
        }
    }

    /// Installs the prune oracle for this scenario. Called by the
    /// explorer right after construction (both the fresh and the
    /// from-snapshot paths); [`replay`](crate::ModelChecker::replay)
    /// never installs one, so replayed traces are taken verbatim.
    pub(crate) fn set_prune(&mut self, prune: Option<PruneOracle>) {
        self.prune = prune;
    }

    /// Rolls the environment over into the next (post-failure) execution:
    /// buffered operations are lost, the crashed execution's storage joins
    /// the stack, and volatile state resets.
    pub(crate) fn advance_execution(&self) {
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        let eviction = inner.machine.policy();
        let machine = std::mem::replace(&mut inner.machine, TsoMachine::new(eviction));
        let points = inner.points_this_exec;
        inner.points_per_exec.push(points);
        inner.stack.push(machine.crash());
        inner.exec_index += 1;
        inner.ops = 0;
        inner.bump = 2 * CACHE_LINE_SIZE as u64;
        inner.writes_since_point = false;
        inner.any_writes_this_exec = false;
        inner.points_this_exec = 0;
        inner.current_tid = ThreadId(0);
        inner.next_tid = 1;
        inner.touched.clear();
        inner.parked.clear();
        if self.flag_lints {
            inner.op_traces.push(OpTrace::new());
        }
    }

    /// Builds an environment that resumes from a crash-point snapshot:
    /// accumulated checker state is cloned from the capture
    /// (copy-on-restore — post-failure reads refine intervals in place),
    /// per-execution volatile state starts fresh exactly as
    /// [`advance_execution`](Self::advance_execution) would leave it, and
    /// the decision log adopts the snapshot's consumed prefix. Running
    /// `Program::run` against the result is equivalent to replaying the
    /// prefix executions, minus the replay.
    pub(crate) fn from_snapshot(
        config: &Config,
        mut decisions: DecisionLog,
        snap: &CheckerSnapshot,
    ) -> Self {
        decisions.adopt_prefix(&snap.prefix);
        let fresh = CheckerEnv::new(config, decisions);
        {
            let mut inner = fresh.inner.borrow_mut();
            inner.stack = snap.stack.clone();
            inner.exec_index = snap.exec_index;
            inner.points_per_exec = snap.points_per_exec.clone();
            inner.crash_points = snap.crash_points.clone();
            inner.races = snap.races.clone();
            inner.race_keys = snap.race_keys.clone();
            inner.load_choice_points = snap.load_choice_points;
            inner.max_rf_set = snap.max_rf_set;
            inner.diagnostics = snap.diagnostics.clone();
            inner.work_since_fence = snap.work_since_fence;
            inner.op_traces = snap.op_traces.clone();
            inner.recovery_reads = snap.recovery_reads.clone();
            inner.points_skipped = snap.points_skipped;
        }
        fresh
    }

    /// Captures the environment as a [`CheckerSnapshot`]. Must be called
    /// right after [`advance_execution`](Self::advance_execution), so the
    /// crashed execution's storage is on the stack and the consumed
    /// decision prefix ends in the crash decision that got us here.
    pub(crate) fn snapshot(&self) -> CheckerSnapshot {
        let inner = self.inner.borrow();
        let prefix = inner.decisions.prefix_decisions(inner.decisions.consumed());
        let bytes = estimate_bytes(
            &inner.stack,
            &inner.op_traces,
            &inner.races,
            &prefix,
            &inner.recovery_reads,
        );
        CheckerSnapshot {
            stack: inner.stack.clone(),
            exec_index: inner.exec_index,
            points_per_exec: inner.points_per_exec.clone(),
            crash_points: inner.crash_points.clone(),
            races: inner.races.clone(),
            race_keys: inner.race_keys.clone(),
            load_choice_points: inner.load_choice_points,
            max_rf_set: inner.max_rf_set,
            diagnostics: inner.diagnostics.clone(),
            work_since_fence: inner.work_since_fence,
            op_traces: inner.op_traces.clone(),
            recovery_reads: inner.recovery_reads.clone(),
            points_skipped: inner.points_skipped,
            prefix,
            bytes,
        }
    }

    /// The decision-trace prefix consumed so far — the snapshot key of
    /// the current crash point.
    pub(crate) fn consumed_trace(&self) -> Vec<usize> {
        self.inner.borrow().decisions.consumed_trace()
    }

    /// The end-of-execution injection point (the paper's third point in
    /// the Figure 4 walkthrough). Called by the explorer after `run`
    /// returns normally; may unwind with a [`CrashSignal`].
    pub(crate) fn end_of_execution_point(&self) {
        if self.inject_at_end {
            self.injection_point_impl(true);
        }
    }

    /// Harvests the scenario record after the final execution.
    pub(crate) fn finish(self) -> ScenarioRecord {
        let mut inner = self.inner.into_inner();
        inner.points_per_exec.push(inner.points_this_exec);
        let mut recovery_reads: Vec<(u64, u64)> = inner.recovery_reads.into_iter().collect();
        recovery_reads.sort_unstable();
        ScenarioRecord {
            decisions: inner.decisions,
            crash_points: inner.crash_points,
            points_per_exec: inner.points_per_exec,
            races: inner.races,
            diagnostics: inner.diagnostics.into_vec(),
            op_traces: inner.op_traces,
            load_choice_points: inner.load_choice_points,
            max_rf_set: inner.max_rf_set,
            recovery_reads,
            points_skipped: inner.points_skipped,
        }
    }

    /// Index of the execution currently running.
    pub(crate) fn current_execution(&self) -> usize {
        self.inner.borrow().exec_index
    }

    // ------------------------------------------------------------------
    // Internal helpers. Every helper that can unwind must not hold the
    // RefCell borrow across guest callbacks (unwinding itself releases
    // borrows safely).
    // ------------------------------------------------------------------

    fn abort(
        &self,
        kind: BugKind,
        message: String,
        location: Option<&'static Location<'static>>,
    ) -> ! {
        panic_any(AbortSignal {
            kind,
            message,
            location,
        })
    }

    #[track_caller]
    fn tick(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.ops += 1;
        if inner.ops > self.max_ops {
            let ops = inner.ops;
            drop(inner);
            self.abort(
                BugKind::InfiniteLoop,
                format!("execution exceeded the operation budget ({ops} ops)"),
                Some(Location::caller()),
            );
        }
    }

    #[track_caller]
    fn check_range(&self, addr: PmAddr, len: usize) {
        let bad_null = addr.offset() < NULL_PAGE_SIZE;
        let end = addr.offset().checked_add(len as u64);
        let bad_oob = !matches!(end, Some(e) if e <= self.pool_size);
        if bad_null || bad_oob {
            let what = if bad_null {
                "null-page"
            } else {
                "out-of-bounds"
            };
            self.abort(
                BugKind::IllegalAccess,
                format!(
                    "{what} access: {len} bytes at {addr} (pool size {})",
                    self.pool_size
                ),
                Some(Location::caller()),
            );
        }
    }

    /// A failure injection point: immediately before an operation that
    /// flushes cache lines, or at the end of an execution. Consults the
    /// decision log; on the crash alternative, unwinds the execution.
    fn injection_point(&self) {
        self.injection_point_impl(false);
    }

    /// `at_end` marks the end-of-execution point, which is exempt from the
    /// no-writes-since-last-point skip (the Figure 4 walkthrough injects
    /// at the end of `addChild` even though the last flush was the final
    /// operation) but still requires the execution to have written
    /// something at all.
    fn injection_point_impl(&self, at_end: bool) {
        let mut inner = self.inner.borrow_mut();
        if inner.exec_index >= self.max_failures {
            return;
        }
        if self.skip_unchanged {
            let eligible = if at_end {
                inner.any_writes_this_exec
            } else {
                inner.writes_since_point
            };
            if !eligible {
                return;
            }
        }
        let exec = inner.exec_index;
        let ordinal = inner.points_this_exec;
        inner.points_this_exec += 1;
        inner.writes_since_point = false;
        if let Some(oracle) = &self.prune {
            // Slice pruning: if nothing since the previous consulted
            // point touched a footprint line, crashing here is
            // behaviorally identical to crashing there — recovery reads
            // the same values from the same candidates. Consume a
            // forced "continue" (one alternative) so decision positions
            // stay 1:1 with unpruned runs and pruned bug traces replay.
            // The first point of every execution and the end-of-
            // execution point are always kept as representatives.
            let invisible = !at_end && ordinal > 0 && !oracle.visible(&inner.touched);
            inner.touched.clear();
            if invisible {
                inner.points_skipped += 1;
                let forced = inner.decisions.next(1, ChoiceKind::Crash, exec);
                debug_assert_eq!(forced, 0);
                return;
            }
        }
        let choice = inner.decisions.next(2, ChoiceKind::Crash, exec);
        if choice == 1 {
            inner.crash_points.push(ordinal);
            drop(inner);
            panic_any(CrashSignal);
        }
    }

    /// Loads one byte, resolving pre-failure nondeterminism through the
    /// decision log and refining writeback intervals (Figures 9–11).
    fn load_byte(&self, addr: PmAddr, loc: &'static Location<'static>) -> u8 {
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        match inner.machine.read_current(inner.current_tid, addr) {
            CurrentRead::Buffered(v) | CurrentRead::Cached(v) => v,
            CurrentRead::Miss => {
                if inner.exec_index >= 1 {
                    // A recovery read: this load consulted pre-failure
                    // persisted state. The set of lines observed here
                    // seeds the slicing footprint (fixpoint rounds).
                    *inner
                        .recovery_reads
                        .entry(addr.cache_line().index())
                        .or_insert(0) += 1;
                }
                let cands = read_pre_failure(&inner.stack, addr);
                inner.max_rf_set = inner.max_rf_set.max(cands.len());
                let choice = if cands.len() == 1 {
                    0
                } else {
                    inner.load_choice_points += 1;
                    if self.flag_races {
                        record_race(inner, addr, loc, &cands);
                    }
                    inner
                        .decisions
                        .next(cands.len(), ChoiceKind::ReadFrom, inner.exec_index)
                };
                let chosen = cands[choice];
                do_read(&mut inner.stack, addr, chosen);
                chosen.value
            }
        }
    }

    /// Appends an op to the running execution's lint trace (callers
    /// check `flag_lints`). The RMW site override substitutes the guest
    /// call site for environment-internal constituent ops.
    fn record_trace(&self, inner: &mut Inner, loc: SourceLoc, kind: TraceOpKind) {
        let tid = inner.current_tid;
        let loc = self.lint_loc.get().unwrap_or(loc);
        inner
            .op_traces
            .last_mut()
            .expect("lint trace present")
            .record(tid, loc, kind);
    }

    fn flush_lines(&self, addr: PmAddr, len: usize, opt: bool, loc: &'static Location<'static>) {
        // The failure injection point sits immediately *before* the flush
        // instruction (paper §4, "Injecting failures").
        self.injection_point();
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        inner.work_since_fence += 1;
        let first = addr.cache_line().index();
        let last = (addr + (len.max(1) as u64 - 1)).cache_line().index();
        if self.prune.is_some() {
            if opt {
                // A clflushopt only takes effect at a later fence in
                // this thread; park it so the fence's drain registers
                // the lines as touched at that point too.
                inner
                    .parked
                    .entry(inner.current_tid.0)
                    .or_default()
                    .extend(first..=last);
            }
            inner.touched.extend(first..=last);
        }
        if self.flag_lints {
            let kind = if opt {
                TraceOpKind::Clflushopt {
                    first_line: first,
                    last_line: last,
                }
            } else {
                TraceOpKind::Clflush {
                    first_line: first,
                    last_line: last,
                }
            };
            self.record_trace(inner, loc, kind);
        }
        if self.flag_perf {
            // The §5.1 extension: a flush of a range with no unflushed
            // stores wastes a persistency operation (the bug class PMTest
            // and pmemcheck report).
            let redundant = (first..=last).all(|l| {
                !inner
                    .machine
                    .storage()
                    .has_unflushed_stores(jaaru_pmem::CacheLineId::new(l))
            });
            if redundant {
                let (kind, what) = if opt {
                    (DiagnosticKind::RedundantFlushOpt, "clflushopt/clwb")
                } else {
                    (DiagnosticKind::RedundantFlush, "clflush")
                };
                record_perf(inner, kind, Some(addr), loc, what);
            }
        }
        for l in first..=last {
            let line = jaaru_pmem::CacheLineId::new(l);
            if opt {
                inner.machine.clflushopt(inner.current_tid, line);
            } else {
                inner.machine.clflush(inner.current_tid, line);
            }
        }
    }
}

/// Folds the current thread's parked (unfenced) clflushopt lines into
/// the touched set: a fence applying them is a persistency effect at
/// the fence, even when the flush itself preceded the anchor point.
fn drain_parked(inner: &mut Inner) {
    if let Some(lines) = inner.parked.get_mut(&inner.current_tid.0) {
        inner.touched.extend(lines.drain());
    }
}

fn record_race(
    inner: &mut Inner,
    addr: PmAddr,
    loc: &'static Location<'static>,
    cands: &[RfCandidate],
) {
    if inner.races.len() >= MAX_RACES {
        return;
    }
    let key = format!("{}:{}:{}", loc.file(), loc.line(), loc.column());
    if !inner.race_keys.insert(key.clone()) {
        return;
    }
    let candidates = cands
        .iter()
        .map(|c| match c.source {
            RfSource::Initial => RaceCandidate {
                exec_index: None,
                value: c.value,
                location: None,
            },
            RfSource::Store { exec, store } => {
                let ev = inner.stack[exec].event(store);
                RaceCandidate {
                    exec_index: Some(exec),
                    value: c.value,
                    location: Some(format!(
                        "{}:{}:{}",
                        ev.loc.file(),
                        ev.loc.line(),
                        ev.loc.column()
                    )),
                }
            }
        })
        .collect();
    inner.races.push(RaceReport {
        addr,
        load_location: key,
        execution_index: inner.exec_index,
        candidates,
    });
}

fn record_perf(
    inner: &mut Inner,
    kind: DiagnosticKind,
    addr: Option<PmAddr>,
    loc: &'static Location<'static>,
    what: &str,
) {
    let site = format!("{}:{}:{}", loc.file(), loc.line(), loc.column());
    let message = match kind {
        DiagnosticKind::RedundantFence => {
            format!("the {what} has no buffered stores or flushes to order; remove it")
        }
        _ => format!("the {what} covers no unflushed stores; remove it"),
    };
    inner.diagnostics.insert(Diagnostic {
        kind,
        site,
        message,
        // The graph-based redundancy pass is the canonical producer of
        // DeleteFlush edits; this inline path stays advisory.
        suggestion: None,
        addr,
        occurrences: 1,
    });
}

impl PmEnv for CheckerEnv {
    #[track_caller]
    fn load_bytes(&self, addr: PmAddr, buf: &mut [u8]) {
        self.tick();
        self.check_range(addr, buf.len());
        let loc = Location::caller();
        if self.flag_lints {
            // The cross-thread race pass keys buggy-scenario reports to
            // the lines recovery actually reads; loads are inert in the
            // persist-order replay itself.
            let mut inner = self.inner.borrow_mut();
            let inner = &mut *inner;
            self.record_trace(
                inner,
                loc,
                TraceOpKind::Load {
                    addr,
                    len: buf.len() as u32,
                    recovery: inner.exec_index >= 1,
                },
            );
        }
        // Byte accesses performed atomically, low address first (paper §4,
        // "Mixed size accesses"). Each byte's committed choice refines the
        // line interval before the next byte's candidates are computed.
        for (i, slot) in buf.iter_mut().enumerate() {
            *slot = self.load_byte(addr + i as u64, loc);
        }
    }

    #[track_caller]
    fn store_bytes(&self, addr: PmAddr, bytes: &[u8]) {
        self.tick();
        self.check_range(addr, bytes.len());
        let loc = Location::caller();
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        inner.machine.store(inner.current_tid, addr, bytes, loc);
        inner.writes_since_point = true;
        inner.any_writes_this_exec = true;
        inner.work_since_fence += 1;
        if self.prune.is_some() {
            let first = addr.cache_line().index();
            let last = (addr + (bytes.len().max(1) as u64 - 1))
                .cache_line()
                .index();
            inner.touched.extend(first..=last);
        }
        if self.flag_lints {
            self.record_trace(
                inner,
                loc,
                TraceOpKind::Store {
                    addr,
                    len: bytes.len() as u32,
                },
            );
        }
    }

    #[track_caller]
    fn clflush(&self, addr: PmAddr, len: usize) {
        self.tick();
        self.check_range(addr, len.max(1));
        self.flush_lines(addr, len, false, Location::caller());
    }

    #[track_caller]
    fn clflushopt(&self, addr: PmAddr, len: usize) {
        self.tick();
        self.check_range(addr, len.max(1));
        self.flush_lines(addr, len, true, Location::caller());
    }

    #[track_caller]
    fn sfence(&self) {
        self.tick();
        // An sfence applies deferred clflushopt effects — a persistency
        // event, so it is an injection point when flushes are pending.
        let pending = {
            let inner = self.inner.borrow();
            inner.machine.flush_buffer_pending(inner.current_tid)
        };
        if pending {
            self.injection_point();
        }
        let loc = Location::caller();
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        if self.flag_perf && inner.work_since_fence == 0 {
            record_perf(inner, DiagnosticKind::RedundantFence, None, loc, "sfence");
        }
        inner.work_since_fence = 0;
        if self.prune.is_some() {
            drain_parked(inner);
        }
        if self.flag_lints {
            self.record_trace(inner, loc, TraceOpKind::Sfence);
        }
        inner.machine.sfence(inner.current_tid);
        // Under OnFence eviction the fence is also the drain point.
        inner.machine.drain_store_buffer(inner.current_tid);
    }

    #[track_caller]
    fn mfence(&self) {
        self.tick();
        let pending = {
            let inner = self.inner.borrow();
            inner.machine.flush_buffer_pending(inner.current_tid)
        };
        if pending {
            self.injection_point();
        }
        let loc = Location::caller();
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        inner.work_since_fence = 0;
        if self.prune.is_some() {
            drain_parked(inner);
        }
        if self.flag_lints {
            self.record_trace(inner, loc, TraceOpKind::Mfence);
        }
        inner.machine.mfence(inner.current_tid);
    }

    #[track_caller]
    fn compare_exchange_u64(&self, addr: PmAddr, current: u64, new: u64) -> u64 {
        // Locked RMW ≡ atomic { mfence; load; store; mfence } (paper §4).
        // Constituent ops recorded in the lint trace carry the guest call
        // site; the trailing machine-level mfence is recorded as the RMW
        // marker itself (fence semantics for the persist analysis).
        let loc = Location::caller();
        let prev = self.lint_loc.replace(Some(loc));
        self.mfence();
        let observed = self.load_u64(addr);
        if observed == current {
            self.store_bytes(addr, &new.to_le_bytes());
        }
        self.lint_loc.set(prev);
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        inner.work_since_fence = 0;
        if self.flag_lints {
            // Failed attempts are recorded too: a failed CAS is still a
            // locked instruction (fences, acquires) — it just publishes
            // nothing, which the persist graph models via `success`.
            self.record_trace(
                inner,
                loc,
                TraceOpKind::Rmw {
                    addr,
                    success: observed == current,
                    recovery: inner.exec_index >= 1,
                },
            );
        }
        if self.prune.is_some() {
            drain_parked(inner);
        }
        inner.machine.mfence(inner.current_tid);
        observed
    }

    #[track_caller]
    fn pm_alloc(&self, size: u64, align: u64) -> PmAddr {
        self.tick();
        if align == 0 || !align.is_power_of_two() {
            self.abort(
                BugKind::AssertionFailure,
                format!("pm_alloc alignment {align} is not a power of two"),
                Some(Location::caller()),
            );
        }
        let mut inner = self.inner.borrow_mut();
        let base = PmAddr::new(inner.bump).align_up(align);
        match base.offset().checked_add(size) {
            Some(end) if end <= self.pool_size => {
                inner.bump = end;
                base
            }
            _ => {
                drop(inner);
                self.abort(
                    BugKind::OutOfMemory,
                    format!(
                        "pm_alloc({size}, {align}) exhausted the {}B pool",
                        self.pool_size
                    ),
                    Some(Location::caller()),
                )
            }
        }
    }

    fn root(&self) -> PmAddr {
        PmAddr::new(NULL_PAGE_SIZE)
    }

    fn pool_size(&self) -> u64 {
        self.pool_size
    }

    fn execution_index(&self) -> usize {
        self.inner.borrow().exec_index
    }

    #[track_caller]
    fn bug(&self, msg: &str) -> ! {
        self.abort(
            BugKind::AssertionFailure,
            msg.to_string(),
            Some(Location::caller()),
        )
    }

    fn spawn(&self, body: &mut dyn FnMut(&dyn PmEnv)) {
        let (old, new) = {
            let mut inner = self.inner.borrow_mut();
            let old = inner.current_tid;
            let new = ThreadId(inner.next_tid);
            inner.next_tid += 1;
            inner.current_tid = new;
            (old, new)
        };
        debug_assert_ne!(old, new);
        // If the body unwinds (crash/bug) the execution is over and thread
        // state resets with it; no need to restore on the panic path.
        body(self);
        self.inner.borrow_mut().current_tid = old;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::DecisionLog;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn env() -> CheckerEnv {
        let mut c = Config::new();
        c.pool_size(4096);
        CheckerEnv::new(&c, DecisionLog::new())
    }

    #[test]
    fn pre_failure_reads_see_own_stores() {
        let e = env();
        let a = e.root();
        e.store_u64(a, 0x1122_3344_5566_7788);
        assert_eq!(e.load_u64(a), 0x1122_3344_5566_7788);
        assert_eq!(e.load_u8(a), 0x88);
    }

    #[test]
    fn unwritten_memory_reads_zero() {
        let e = env();
        assert_eq!(e.load_u64(e.root() + 32), 0);
    }

    #[test]
    fn illegal_access_aborts_with_bug() {
        let e = env();
        let err = catch_unwind(AssertUnwindSafe(|| e.load_u8(PmAddr::NULL))).unwrap_err();
        let sig = err.downcast::<AbortSignal>().expect("abort signal");
        assert_eq!(sig.kind, BugKind::IllegalAccess);
        assert!(sig.message.contains("null-page"));
    }

    #[test]
    fn out_of_bounds_aborts() {
        let e = env();
        let err = catch_unwind(AssertUnwindSafe(|| e.load_u64(PmAddr::new(4092)))).unwrap_err();
        let sig = err.downcast::<AbortSignal>().expect("abort signal");
        assert_eq!(sig.kind, BugKind::IllegalAccess);
        assert!(sig.message.contains("out-of-bounds"));
    }

    #[test]
    fn crash_decision_unwinds_with_crash_signal() {
        let e = env();
        let a = e.root();
        // First flush: decision "continue" (default 0). Backtrack to crash.
        e.store_u64(a, 1);
        e.clflush(a, 8);
        let mut rec = e.finish();
        assert!(rec.decisions.backtrack(), "one crash decision to flip");
        let mut c = Config::new();
        c.pool_size(4096);
        let e = CheckerEnv::new(&c, rec.decisions);
        let err = catch_unwind(AssertUnwindSafe(|| {
            e.store_u64(a, 1);
            e.clflush(a, 8);
        }))
        .unwrap_err();
        assert!(err.is::<CrashSignal>());
    }

    #[test]
    fn post_failure_load_explores_candidates() {
        // Store without flush, crash, recover: the load may see 1 or 0.
        let mut c = Config::new();
        c.pool_size(4096);
        let a = PmAddr::new(NULL_PAGE_SIZE);

        let mut seen = Vec::new();
        let mut decisions = DecisionLog::new();
        loop {
            let e = CheckerEnv::new(&c, decisions);
            e.store_u8(a, 1); // pre-failure store, not flushed
            e.advance_execution(); // simulated power failure
            seen.push(e.load_u8(a));
            let mut rec = e.finish();
            if !rec.decisions.backtrack() {
                break;
            }
            decisions = std::mem::take(&mut rec.decisions);
        }
        assert_eq!(seen, vec![1, 0], "newest-first exploration order");
    }

    #[test]
    fn flushed_store_is_forced_in_recovery() {
        let mut c = Config::new();
        c.pool_size(4096);
        // Replay log where the single crash decision chooses "continue";
        // we crash manually via advance_execution.
        let e = CheckerEnv::new(&c, DecisionLog::new());
        let a = e.root();
        e.store_u8(a, 7);
        e.clflush(a, 1);
        e.sfence();
        e.advance_execution();
        assert_eq!(e.load_u8(a), 7);
        let rec = e.finish();
        // Crash decision at the clflush is in the log; the recovery load
        // had exactly one candidate so only that decision can branch.
        assert_eq!(rec.load_choice_points, 0);
    }

    #[test]
    fn races_are_recorded_for_multi_store_loads() {
        let mut c = Config::new();
        c.pool_size(4096);
        let e = CheckerEnv::new(&c, DecisionLog::new());
        let a = e.root();
        e.store_u8(a, 1);
        e.store_u8(a, 2);
        e.advance_execution();
        let _ = e.load_u8(a);
        let rec = e.finish();
        assert_eq!(rec.races.len(), 1);
        assert_eq!(rec.races[0].candidates.len(), 3); // 2, 1, initial 0
        assert_eq!(rec.max_rf_set, 3);
        assert_eq!(rec.load_choice_points, 1);
    }

    #[test]
    fn alloc_is_deterministic_per_execution() {
        let e = env();
        let a1 = e.pm_alloc(16, 8);
        e.advance_execution();
        let a2 = e.pm_alloc(16, 8);
        assert_eq!(a1, a2, "bump allocator resets across executions");
    }

    #[test]
    fn op_budget_catches_infinite_loops() {
        let mut c = Config::new();
        c.pool_size(4096).max_ops_per_execution(100);
        let e = CheckerEnv::new(&c, DecisionLog::new());
        let a = e.root();
        let err = catch_unwind(AssertUnwindSafe(|| loop {
            let _ = e.load_u8(a);
        }))
        .unwrap_err();
        let sig = err.downcast::<AbortSignal>().expect("abort signal");
        assert_eq!(sig.kind, BugKind::InfiniteLoop);
    }

    #[test]
    fn spawned_thread_has_its_own_fences() {
        // clflushopt by thread A is not ordered by an sfence in thread B.
        let e = env();
        let a = e.root();
        e.store_u8(a, 1);
        e.spawn(&mut |t| {
            t.clflushopt(a, 1);
            // No fence in this thread.
        });
        e.sfence(); // main thread fence: does not order the child's flush
        e.advance_execution();
        // Both 1 and 0 must be candidates: the flush never took effect.
        let _ = e.load_u8(a);
        let rec = e.finish();
        assert_eq!(rec.max_rf_set, 2);
    }

    #[test]
    fn cas_updates_and_reports_observed() {
        let e = env();
        let a = e.root();
        e.store_u64(a, 10);
        assert_eq!(e.compare_exchange_u64(a, 10, 20), 10);
        assert_eq!(e.load_u64(a), 20);
        assert_eq!(e.compare_exchange_u64(a, 10, 30), 20);
        assert_eq!(e.load_u64(a), 20);
    }
}
