//! Panic payloads used to unwind guest executions, and the global panic
//! hook that keeps exploration quiet.
//!
//! The model checker stops a guest execution by panicking with a typed
//! payload and catching it at the execution boundary — the re-execution
//! analogue of the original Jaaru's fork-based rollback.

use std::cell::{Cell, RefCell};
use std::panic::{self, Location};
use std::sync::Once;

use crate::report::BugKind;

/// Payload for a simulated power failure: the execution stops here and a
/// post-failure execution begins against the same persistent state.
pub(crate) struct CrashSignal;

/// Payload for a detected bug: the execution aborts and the scenario is
/// recorded in the check report.
pub(crate) struct AbortSignal {
    pub kind: BugKind,
    pub message: String,
    pub location: Option<&'static Location<'static>>,
}

thread_local! {
    /// While `true`, the panic hook stays silent: panics are expected
    /// control flow (crash signals, guest assertion failures being
    /// harvested as bugs).
    static SUPPRESS_PANIC_OUTPUT: Cell<bool> = const { Cell::new(false) };
    /// Location of the most recent panic on this thread, captured by the
    /// hook so guest `assert!` failures can be attributed to source lines.
    static LAST_PANIC_LOCATION: RefCell<Option<(String, u32, u32)>> = const { RefCell::new(None) };
}

static HOOK: Once = Once::new();

/// Installs the panic hook exactly once, process-wide. The hook delegates
/// to the previous hook unless the current thread is running a guest
/// execution under the checker.
pub(crate) fn install_panic_hook() {
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if let Some(loc) = info.location() {
                LAST_PANIC_LOCATION.with(|l| {
                    *l.borrow_mut() = Some((loc.file().to_string(), loc.line(), loc.column()));
                });
            }
            if !SUPPRESS_PANIC_OUTPUT.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

/// Runs `f` with panic output suppressed on this thread.
///
/// Companion tools (the eager baseline, the comparators) use panics as
/// expected control flow for simulated crashes, exactly like the checker
/// itself; wrapping their `catch_unwind` sites in this keeps runs quiet.
/// The hook is installed on first use and delegates to the previous hook
/// outside suppressed sections.
pub fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    install_panic_hook();
    with_quiet_panics_inner(f)
}

pub(crate) fn with_quiet_panics_inner<T>(f: impl FnOnce() -> T) -> T {
    struct Guard(bool);
    impl Drop for Guard {
        fn drop(&mut self) {
            SUPPRESS_PANIC_OUTPUT.with(|s| s.set(self.0));
        }
    }
    let prev = SUPPRESS_PANIC_OUTPUT.with(|s| s.replace(true));
    let _guard = Guard(prev);
    f()
}

/// The location of the most recent panic on this thread, as
/// `file:line:column`, if any panic occurred.
pub(crate) fn take_last_panic_location() -> Option<String> {
    LAST_PANIC_LOCATION
        .with(|l| l.borrow_mut().take())
        .map(|(f, line, col)| format!("{f}:{line}:{col}"))
}

/// Extracts a human-readable message from an arbitrary panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn quiet_panics_restore_flag() {
        install_panic_hook();
        let before = SUPPRESS_PANIC_OUTPUT.with(Cell::get);
        let _ = with_quiet_panics(|| {
            catch_unwind(AssertUnwindSafe(|| panic!("expected test panic"))).unwrap_err()
        });
        assert_eq!(SUPPRESS_PANIC_OUTPUT.with(Cell::get), before);
    }

    #[test]
    fn panic_location_is_captured() {
        install_panic_hook();
        let _ = with_quiet_panics(|| {
            catch_unwind(AssertUnwindSafe(|| panic!("expected test panic"))).unwrap_err()
        });
        let loc = take_last_panic_location().expect("location captured");
        assert!(loc.contains("signal.rs"), "got {loc}");
        assert!(take_last_panic_location().is_none(), "take clears the slot");
    }

    #[test]
    fn panic_message_extraction() {
        let boxed: Box<dyn std::any::Any + Send> = Box::new("static message");
        assert_eq!(panic_message(boxed.as_ref()), "static message");
        let boxed: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(boxed.as_ref()), "owned");
        let boxed: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(boxed.as_ref()), "non-string panic payload");
    }
}
