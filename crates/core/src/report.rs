//! Bug reports, persistency-race reports, and check statistics.

use std::fmt;
use std::time::Duration;

use jaaru_analysis::Diagnostic;
use jaaru_pmem::PmAddr;
use jaaru_snapshot::SnapshotStats;

/// The symptom class of a detected bug, mirroring the paper's bug tables
/// (Figures 12/13/15/16).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BugKind {
    /// Out-of-bounds or null-page access ("segmentation fault" /
    /// "illegal memory access" in the paper's tables).
    IllegalAccess,
    /// A failed program sanity check (`pm_assert` / `bug()` — the paper's
    /// "assertion failure" symptom).
    AssertionFailure,
    /// A Rust panic inside guest code (e.g. a failed `assert!` or an
    /// `unwrap` on corrupted data).
    GuestPanic,
    /// The per-execution operation budget was exhausted (the paper's
    /// "getting stuck in an infinite loop" symptom).
    InfiniteLoop,
    /// The persistent pool was exhausted.
    OutOfMemory,
}

impl fmt::Display for BugKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BugKind::IllegalAccess => "illegal memory access",
            BugKind::AssertionFailure => "assertion failure",
            BugKind::GuestPanic => "guest panic",
            BugKind::InfiniteLoop => "infinite loop",
            BugKind::OutOfMemory => "out of persistent memory",
        };
        f.write_str(s)
    }
}

/// A bug found by the model checker, with everything needed to reproduce
/// it: the decision trace identifies the exact failure scenario.
#[derive(Clone, Debug)]
pub struct BugReport {
    /// Symptom class.
    pub kind: BugKind,
    /// Human-readable description.
    pub message: String,
    /// Guest source location (`file:line:column`) where the symptom
    /// manifested, when known.
    pub location: Option<String>,
    /// Execution within the scenario that hit the bug (0 = pre-failure).
    pub execution_index: usize,
    /// Ordinals (within their executions) of the failure injection points
    /// where power was lost in this scenario.
    pub crash_points: Vec<usize>,
    /// The decision trace reproducing the scenario.
    pub trace: Vec<usize>,
    /// How many explored scenarios manifested this same bug.
    pub occurrences: u64,
}

impl fmt::Display for BugReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)?;
        if let Some(loc) = &self.location {
            write!(f, " at {loc}")?;
        }
        write!(
            f,
            " (execution {}, crash points {:?}, seen in {} scenario(s))",
            self.execution_index, self.crash_points, self.occurrences
        )
    }
}

/// One candidate store a racy load could have read (the paper's §4
/// debugging output lists each store, its trace position, and its source
/// location).
#[derive(Clone, Debug)]
pub struct RaceCandidate {
    /// Execution that performed the store (`None` = the initial zeroed
    /// pool contents).
    pub exec_index: Option<usize>,
    /// Byte value observed.
    pub value: u8,
    /// Source location of the store (`file:line:column`).
    pub location: Option<String>,
}

/// A load that could read from more than one pre-failure store — the
/// typical signature of a missing cache-line flush.
#[derive(Clone, Debug)]
pub struct RaceReport {
    /// First byte of the racy load.
    pub addr: PmAddr,
    /// Source location of the load.
    pub load_location: String,
    /// Execution performing the load.
    pub execution_index: usize,
    /// The stores it may read from, newest first.
    pub candidates: Vec<RaceCandidate>,
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "load at {} (addr {}, execution {}) may read from {} stores:",
            self.load_location,
            self.addr,
            self.execution_index,
            self.candidates.len()
        )?;
        for c in &self.candidates {
            match (&c.exec_index, &c.location) {
                (Some(e), Some(loc)) => {
                    writeln!(f, "  - {:#04x} stored by execution {e} at {loc}", c.value)?
                }
                _ => writeln!(f, "  - {:#04x} from initial pool contents", c.value)?,
            }
        }
        Ok(())
    }
}

/// Exploration statistics (the quantities reported in Figure 14).
#[derive(Clone, Debug, Default)]
pub struct CheckStats {
    /// Distinct failure scenarios explored (leaves of the decision tree).
    pub scenarios: u64,
    /// Program executions a fork-based implementation would perform (the
    /// paper's `#JExec.`): executions from each scenario's divergence
    /// point onward. Fork-equivalent accounting: per scenario this counts
    /// `total - divergence` executions, where `total` is the scenario's
    /// logical execution count (`executions_replayed +
    /// executions_restored` for that scenario) and `divergence` is the
    /// execution index it shares with its predecessor — so the figure is
    /// invariant across snapshot settings and worker counts.
    pub executions: u64,
    /// `Program::run` invocations actually performed, replayed prefixes
    /// included (the residual cost of re-execution over fork-based
    /// rollback).
    pub executions_replayed: u64,
    /// Prefix executions skipped by restoring crash-point snapshots
    /// instead of replaying. `executions_replayed + executions_restored`
    /// is the logical execution count — what a pure re-execution run
    /// reports as `executions_replayed` — and is what the digest pins.
    pub executions_restored: u64,
    /// Failure injection points in the initial pre-failure execution (the
    /// paper's `#FPoints`).
    pub failure_points: u64,
    /// Loads that faced a choice of more than one store.
    pub load_choice_points: u64,
    /// Largest may-read-from set encountered.
    pub max_rf_set: usize,
    /// Wall-clock exploration time (the paper's `JTime`).
    pub duration: Duration,
}

/// Per-worker exploration statistics from a parallel run.
#[derive(Clone, Debug, Default)]
pub struct WorkerStats {
    /// Worker index (0-based).
    pub worker: usize,
    /// Failure scenarios this worker ran.
    pub scenarios: u64,
    /// Fork-equivalent executions this worker performed.
    pub executions: u64,
    /// `Program::run` invocations this worker actually performed.
    pub executions_replayed: u64,
    /// Prefix executions this worker skipped via its snapshot cache.
    pub executions_restored: u64,
    /// Work items this worker stole from another worker's queue.
    pub steals: u64,
    /// Wall-clock time the worker spent between start and exit.
    pub busy: Duration,
}

/// Aggregate statistics of a parallel exploration (absent from
/// sequential runs).
#[derive(Clone, Debug, Default)]
pub struct ParallelStats {
    /// Worker threads used.
    pub jobs: usize,
    /// Total cross-worker steals.
    pub steals: u64,
    /// Per-worker breakdown, indexed by worker.
    pub workers: Vec<WorkerStats>,
}

impl fmt::Display for ParallelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} worker(s), {} steal(s)", self.jobs, self.steals)?;
        for w in &self.workers {
            write!(
                f,
                "; w{}: {} scenario(s), {} execution(s), {} steal(s), {:.3}s",
                w.worker,
                w.scenarios,
                w.executions,
                w.steals,
                w.busy.as_secs_f64()
            )?;
        }
        Ok(())
    }
}

/// Summary of the static persistence slice that steered a pruned run
/// (attached when [`Config::prune`](crate::Config::prune) is on).
///
/// Excluded from [`CheckReport::digest`]: pruning must leave verdicts,
/// bug sets, and lint findings untouched, but the slice itself — the
/// footprint, the skip counts — is exactly what differs between pruned
/// and unpruned runs.
#[derive(Clone, Debug, Default)]
pub struct SliceSummary {
    /// Cache lines any recovery execution was observed to read (the
    /// recovery read footprint), sorted.
    pub footprint: Vec<u64>,
    /// Per-line recovery read counts summed over explored scenarios and
    /// fixpoint rounds, sorted by line.
    pub reads_per_line: Vec<(u64, u64)>,
    /// Per-line pre-failure store counts from the crash-free execution
    /// trace (empty unless [`Config::lints`](crate::Config::lints) is
    /// on), sorted by line.
    pub writes_per_line: Vec<(u64, u64)>,
    /// Injection points the prune oracle skipped in the final fixpoint
    /// round, summed over scenarios.
    pub points_skipped: u64,
    /// Fixpoint rounds run until the footprint stabilized.
    pub rounds: u64,
    /// Logical executions of the final (converged) round alone — the
    /// cost of the pruned exploration proper, once the footprint is
    /// known. [`CheckStats::executions`] is cumulative over every
    /// discovery round; this field is what amortized re-checking (a
    /// warm service cache, a CI re-run) pays per check.
    pub final_round_executions: u64,
    /// Scenarios of the final (converged) round alone (the cumulative
    /// [`CheckStats::scenarios`] counterpart of
    /// [`final_round_executions`](Self::final_round_executions)).
    pub final_round_scenarios: u64,
}

impl SliceSummary {
    /// The slice as a JSON object (embedded in
    /// [`CheckReport::to_json`]).
    pub fn to_json(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"footprint\": {:?}, \"reads_per_line\": [",
            self.footprint
        );
        for (i, (line, n)) in self.reads_per_line.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "[{line}, {n}]");
        }
        out.push_str("], \"writes_per_line\": [");
        for (i, (line, n)) in self.writes_per_line.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "[{line}, {n}]");
        }
        let _ = write!(
            out,
            "], \"points_skipped\": {}, \"rounds\": {}, \"final_round_executions\": {}, \
             \"final_round_scenarios\": {}}}",
            self.points_skipped,
            self.rounds,
            self.final_round_executions,
            self.final_round_scenarios
        );
        out
    }
}

/// The result of a model-checking run.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// Distinct bugs found, in discovery order.
    pub bugs: Vec<BugReport>,
    /// Loads flagged as able to read multiple stores (missing-flush
    /// debugging aid), deduplicated by load location.
    pub races: Vec<RaceReport>,
    /// Findings of the analysis passes, deduplicated by `(kind, site)`:
    /// error-severity robustness violations from the lint engine (with
    /// [`Config::lints`](crate::Config::lints) on) and warning-severity
    /// wasted persistency operations (with
    /// [`Config::flag_perf_issues`](crate::Config::flag_perf_issues) on).
    pub diagnostics: Vec<Diagnostic>,
    /// Exploration statistics.
    pub stats: CheckStats,
    /// Whether exploration stopped early (scenario/bug caps).
    pub truncated: bool,
    /// Worker-level statistics when the check ran with
    /// [`Config::jobs`](crate::Config::jobs) > 1; `None` for sequential
    /// runs.
    pub parallel: Option<ParallelStats>,
    /// Snapshot-cache activity attributed to this run (read once from
    /// the run's — possibly shared — cache, as a delta over its counters
    /// at run start); `None` when snapshots were disabled. Excluded from
    /// [`digest`](Self::digest): cache contents and worker scheduling
    /// make hit/eviction counts nondeterministic, while the explored
    /// scenario set is not.
    pub snapshots: Option<SnapshotStats>,
    /// The persistence slice that steered pruning; `None` when
    /// [`Config::prune`](crate::Config::prune) was off. Excluded from
    /// [`digest`](Self::digest) and from the canonical JSON view.
    pub slice: Option<SliceSummary>,
}

impl CheckReport {
    /// `true` when no bug was found.
    pub fn is_clean(&self) -> bool {
        self.bugs.is_empty()
    }

    /// `true` when any diagnostic is error-severity (a robustness
    /// violation from the lint engine); `jaaru_cli lint` exits nonzero
    /// on these.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.is_error())
    }

    /// A one-paragraph summary suitable for logs.
    pub fn summary(&self) -> String {
        format!(
            "{} bug(s), {} race-flagged load(s), {} diagnostic(s); \
             {} scenarios, {} executions \
             ({} replayed + {} restored), {} failure points, {:.3}s{}",
            self.bugs.len(),
            self.races.len(),
            self.diagnostics.len(),
            self.stats.scenarios,
            self.stats.executions,
            self.stats.executions_replayed,
            self.stats.executions_restored,
            self.stats.failure_points,
            self.stats.duration.as_secs_f64(),
            if self.truncated { " [truncated]" } else { "" },
        )
    }

    /// A deterministic fingerprint of the check's *outcome*: every bug,
    /// race, diagnostic, and exploration statistic — excluding
    /// wall-clock time and worker-level scheduling stats, which
    /// legitimately vary between runs. Two runs of the same program and
    /// configuration (at any worker count, absent truncation) must
    /// produce byte-identical digests; the determinism regression tests
    /// compare exactly this string.
    pub fn digest(&self) -> String {
        self.digest_impl(true)
    }

    /// [`digest`](Self::digest) minus the analysis-pass diagnostics: the
    /// fingerprint of the *exploration* outcome only (stats, bugs,
    /// races). The fuzzing oracle compares configurations that disagree
    /// on which analyses run — lints on vs off — on exactly this view:
    /// turning an analysis on may add diagnostics, but must never change
    /// what exploration finds.
    pub fn exploration_digest(&self) -> String {
        self.digest_impl(false)
    }

    /// A deterministic, occurrence-insensitive fingerprint of the lint
    /// findings: every diagnostic's severity, rule id, site, and
    /// message, sorted. Pruning may visit fewer scenarios and therefore
    /// see a finding fewer *times*, but must never change *which*
    /// findings exist — so the pruning soundness comparisons (fuzz
    /// oracle, determinism suite, bench) pin this digest rather than
    /// the occurrence-carrying [`digest`](Self::digest).
    ///
    /// Dead-flush findings are excluded: they are *derived from* the
    /// slice footprint and exist only on pruned runs by construction.
    pub fn lint_digest(&self) -> String {
        use jaaru_analysis::DiagnosticKind;
        let mut lines: Vec<String> = self
            .diagnostics
            .iter()
            .filter(|d| d.kind != DiagnosticKind::DeadFlush)
            .map(|d| {
                format!(
                    "{}[{}] {}: {}",
                    d.severity().as_str(),
                    d.kind.as_str(),
                    d.site,
                    d.message
                )
            })
            .collect();
        lines.sort_unstable();
        let mut out = lines.join("\n");
        out.push('\n');
        out
    }

    fn digest_impl(&self, include_diagnostics: bool) -> String {
        use fmt::Write;
        let mut out = String::new();
        // `executions_replayed + executions_restored` is printed in the
        // historical "with replay" slot: it is the snapshot-invariant
        // logical execution count, so digests stay byte-identical whether
        // prefixes were replayed or restored.
        let _ = writeln!(
            out,
            "stats: {} scenarios, {} executions, {} with replay, {} failure points, \
             {} load choice points, max rf set {}, truncated {}",
            self.stats.scenarios,
            self.stats.executions,
            self.stats.executions_replayed + self.stats.executions_restored,
            self.stats.failure_points,
            self.stats.load_choice_points,
            self.stats.max_rf_set,
            self.truncated,
        );
        for b in &self.bugs {
            let _ = writeln!(out, "bug: {b} trace {:?}", b.trace);
        }
        for r in &self.races {
            let _ = write!(out, "race: {r}");
        }
        if include_diagnostics {
            for d in &self.diagnostics {
                let _ = writeln!(out, "lint: {d}");
            }
        }
        out
    }

    /// The report as a JSON object (machine-readable `--format json`
    /// output of `jaaru_cli`). Hand-rolled — the checker has no
    /// serialization dependency — but proper JSON: strings are escaped,
    /// optional fields are `null`.
    pub fn to_json(&self) -> String {
        self.json_impl(true)
    }

    /// [`to_json`](Self::to_json) restricted to the run-invariant view:
    /// wall-clock time and snapshot-cache counters are omitted, so two
    /// runs of the same program and configuration — at any worker count,
    /// with any cache state, absent truncation — produce byte-identical
    /// output. This is the artifact contract of the serving daemon
    /// (`--format json-canonical`): a cached reply must match a freshly
    /// computed one to the byte.
    pub fn to_canonical_json(&self) -> String {
        self.json_impl(false)
    }

    fn json_impl(&self, timings: bool) -> String {
        use fmt::Write;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"clean\": {},", self.is_clean());
        let _ = writeln!(out, "  \"has_errors\": {},", self.has_errors());
        let _ = writeln!(out, "  \"truncated\": {},", self.truncated);
        if timings {
            let _ = write!(
                out,
                "  \"stats\": {{\"scenarios\": {}, \"executions\": {}, \
                 \"executions_replayed\": {}, \"executions_restored\": {}, \
                 \"failure_points\": {}, \
                 \"load_choice_points\": {}, \"max_rf_set\": {}, \
                 \"duration_secs\": {:.6}",
                self.stats.scenarios,
                self.stats.executions,
                self.stats.executions_replayed,
                self.stats.executions_restored,
                self.stats.failure_points,
                self.stats.load_choice_points,
                self.stats.max_rf_set,
                self.stats.duration.as_secs_f64(),
            );
        } else {
            // The replayed/restored split depends on cache state and
            // worker scheduling; only their sum (the logical execution
            // count the digest pins) is run-invariant.
            let _ = write!(
                out,
                "  \"stats\": {{\"scenarios\": {}, \"executions\": {}, \
                 \"executions_logical\": {}, \"failure_points\": {}, \
                 \"load_choice_points\": {}, \"max_rf_set\": {}",
                self.stats.scenarios,
                self.stats.executions,
                self.stats.executions_replayed + self.stats.executions_restored,
                self.stats.failure_points,
                self.stats.load_choice_points,
                self.stats.max_rf_set,
            );
        }
        out.push_str("},\n");
        if timings {
            match &self.slice {
                Some(s) => {
                    let _ = writeln!(out, "  \"slice\": {},", s.to_json());
                }
                None => {
                    let _ = writeln!(out, "  \"slice\": null,");
                }
            }
            match &self.snapshots {
                Some(s) => {
                    let _ = writeln!(
                        out,
                        "  \"snapshots\": {{\"hits\": {}, \"misses\": {}, \
                         \"inserts\": {}, \"evictions\": {}, \"bytes\": {}, \
                         \"peak_bytes\": {}, \"shared_hits\": {}, \
                         \"shared_misses\": {}, \"shared_evictions\": {}}},",
                        s.hits,
                        s.misses,
                        s.inserts,
                        s.evictions,
                        s.bytes,
                        s.peak_bytes,
                        s.shared_hits,
                        s.shared_misses,
                        s.shared_evictions,
                    );
                }
                None => {
                    let _ = writeln!(out, "  \"snapshots\": null,");
                }
            }
        }
        out.push_str("  \"bugs\": [");
        for (i, b) in self.bugs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"kind\": {}, \"message\": {}, \"location\": {}, \
                 \"execution_index\": {}, \"crash_points\": {:?}, \
                 \"trace\": {:?}, \"occurrences\": {}}}",
                json_string(&b.kind.to_string()),
                json_string(&b.message),
                json_opt_string(b.location.as_deref()),
                b.execution_index,
                b.crash_points,
                b.trace,
                b.occurrences,
            );
        }
        out.push_str("],\n");
        out.push_str("  \"races\": [");
        for (i, r) in self.races.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"addr\": {}, \"load_location\": {}, \"execution_index\": {}, \
                 \"candidates\": [",
                r.addr.offset(),
                json_string(&r.load_location),
                r.execution_index,
            );
            for (j, c) in r.candidates.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let exec = match c.exec_index {
                    Some(e) => e.to_string(),
                    None => "null".into(),
                };
                let _ = write!(
                    out,
                    "{{\"exec_index\": {}, \"value\": {}, \"location\": {}}}",
                    exec,
                    c.value,
                    json_opt_string(c.location.as_deref()),
                );
            }
            out.push_str("]}");
        }
        out.push_str("],\n");
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let addr = match d.addr {
                Some(a) => a.offset().to_string(),
                None => "null".into(),
            };
            let fix = match &d.suggestion {
                Some(edit) => format!(
                    "{{\"edit\": {}, \"site\": {}, \"cache_line\": {}}}",
                    json_string(edit.kind_str()),
                    json_string(edit.site()),
                    match edit.cache_line() {
                        Some(line) => line.to_string(),
                        None => "null".into(),
                    }
                ),
                None => "null".into(),
            };
            let _ = write!(
                out,
                "{{\"kind\": {}, \"severity\": {}, \"site\": {}, \
                 \"message\": {}, \"fix\": {fix}, \"addr\": {}, \"occurrences\": {}}}",
                json_string(d.kind.as_str()),
                json_string(d.severity().as_str()),
                json_string(&d.site),
                json_string(&d.message),
                addr,
                d.occurrences,
            );
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes `s` as a JSON string literal, double quotes included.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_opt_string(s: Option<&str>) -> String {
    match s {
        Some(s) => json_string(s),
        None => "null".into(),
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.summary())?;
        if let Some(p) = &self.parallel {
            writeln!(f, "  parallel: {p}")?;
        }
        if let Some(s) = &self.snapshots {
            writeln!(f, "  snapshots: {s}")?;
        }
        if let Some(s) = &self.slice {
            writeln!(
                f,
                "  slice: footprint {} line(s), {} point(s) skipped, {} round(s)",
                s.footprint.len(),
                s.points_skipped,
                s.rounds
            )?;
        }
        for b in &self.bugs {
            writeln!(f, "  {b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bug_kinds_display() {
        assert_eq!(BugKind::IllegalAccess.to_string(), "illegal memory access");
        assert_eq!(BugKind::InfiniteLoop.to_string(), "infinite loop");
    }

    #[test]
    fn bug_report_display_mentions_scenario() {
        let b = BugReport {
            kind: BugKind::AssertionFailure,
            message: "lost committed key".into(),
            location: Some("tree.rs:10:5".into()),
            execution_index: 1,
            crash_points: vec![3],
            trace: vec![0, 1, 0],
            occurrences: 2,
        };
        let s = b.to_string();
        assert!(s.contains("assertion failure"));
        assert!(s.contains("tree.rs:10:5"));
        assert!(s.contains("execution 1"));
        assert!(s.contains("2 scenario(s)"));
    }

    #[test]
    fn race_report_lists_candidates() {
        let r = RaceReport {
            addr: PmAddr::new(64),
            load_location: "recovery.rs:5:9".into(),
            execution_index: 1,
            candidates: vec![
                RaceCandidate {
                    exec_index: Some(0),
                    value: 7,
                    location: Some("init.rs:3:5".into()),
                },
                RaceCandidate {
                    exec_index: None,
                    value: 0,
                    location: None,
                },
            ],
        };
        let s = r.to_string();
        assert!(s.contains("may read from 2 stores"));
        assert!(s.contains("initial pool contents"));
        assert!(s.contains("init.rs:3:5"));
    }

    #[test]
    fn clean_report() {
        let r = CheckReport::default();
        assert!(r.is_clean());
        assert!(!r.has_errors());
        assert!(r.summary().contains("0 bug(s)"));
    }

    #[test]
    fn error_diagnostics_flip_has_errors() {
        use jaaru_analysis::DiagnosticKind;
        let mut r = CheckReport::default();
        r.diagnostics.push(Diagnostic {
            kind: DiagnosticKind::RedundantFlush,
            site: "a.rs:1:1".into(),
            message: "remove it".into(),
            suggestion: None,
            addr: None,
            occurrences: 1,
        });
        assert!(!r.has_errors(), "warnings are not errors");
        r.diagnostics.push(Diagnostic {
            kind: DiagnosticKind::MissingFlush,
            site: "b.rs:2:2".into(),
            message: "insert a flush".into(),
            suggestion: None,
            addr: Some(PmAddr::new(64)),
            occurrences: 1,
        });
        assert!(r.has_errors());
        assert!(r.digest().contains("lint: error[missing-flush]"));
        assert!(
            !r.exploration_digest().contains("lint:"),
            "exploration digest excludes diagnostics"
        );
        assert!(r.digest().starts_with(&r.exploration_digest()));
    }

    #[test]
    fn json_output_is_well_formed() {
        use jaaru_analysis::DiagnosticKind;
        let mut r = CheckReport::default();
        r.bugs.push(BugReport {
            kind: BugKind::GuestPanic,
            message: "saw \"quoted\" value".into(),
            location: None,
            execution_index: 1,
            crash_points: vec![0],
            trace: vec![1, 0],
            occurrences: 3,
        });
        r.diagnostics.push(Diagnostic {
            kind: DiagnosticKind::MissingFence,
            site: "lib.rs:10:5".into(),
            message: "insert an sfence".into(),
            suggestion: Some(jaaru_analysis::FixEdit::InsertFence {
                site: "lib.rs:10:5".into(),
                line: Some(2),
            }),
            addr: Some(PmAddr::new(128)),
            occurrences: 2,
        });
        let json = r.to_json();
        assert!(json.contains("\"clean\": false"), "{json}");
        assert!(json.contains("\"snapshots\": null"), "{json}");
        r.snapshots = Some(SnapshotStats {
            hits: 4,
            misses: 2,
            inserts: 6,
            evictions: 1,
            bytes: 512,
            peak_bytes: 1024,
            shared_hits: 3,
            shared_misses: 1,
            shared_evictions: 0,
        });
        let json = r.to_json();
        assert!(json.contains("\"hits\": 4"), "{json}");
        assert!(json.contains("\"peak_bytes\": 1024"), "{json}");
        assert!(json.contains("\"shared_hits\": 3"), "{json}");
        assert!(json.contains("\"has_errors\": true"), "{json}");
        assert!(json.contains("\\\"quoted\\\""), "escaped quotes: {json}");
        assert!(json.contains("\"location\": null"), "{json}");
        assert!(json.contains("\"kind\": \"missing-fence\""), "{json}");
        assert!(json.contains("\"severity\": \"error\""), "{json}");
        assert!(json.contains("\"addr\": 128"), "{json}");
        assert!(json.contains("\"message\": \"insert an sfence\""), "{json}");
        assert!(
            json.contains(
                "\"fix\": {\"edit\": \"insert-fence\", \"site\": \"lib.rs:10:5\", \
                 \"cache_line\": 2}"
            ),
            "{json}"
        );
        // Balanced braces/brackets (cheap well-formedness check).
        let opens = json.matches('{').count() + json.matches('[').count();
        let closes = json.matches('}').count() + json.matches(']').count();
        assert_eq!(opens, closes, "{json}");
    }

    #[test]
    fn canonical_json_omits_run_varying_fields() {
        let mut r = CheckReport::default();
        r.stats.executions_replayed = 3;
        r.stats.executions_restored = 2;
        r.stats.duration = Duration::from_millis(125);
        r.snapshots = Some(SnapshotStats {
            hits: 4,
            ..Default::default()
        });
        let canonical = r.to_canonical_json();
        assert!(!canonical.contains("duration_secs"), "{canonical}");
        assert!(!canonical.contains("snapshots"), "{canonical}");
        assert!(!canonical.contains("executions_replayed"), "{canonical}");
        assert!(
            canonical.contains("\"executions_logical\": 5"),
            "{canonical}"
        );

        // Two runs differing only in timing/cache state agree.
        let mut other = r.clone();
        other.stats.duration = Duration::from_secs(9);
        other.stats.executions_replayed = 1;
        other.stats.executions_restored = 4;
        other.snapshots = None;
        assert_eq!(canonical, other.to_canonical_json());

        let opens = canonical.matches('{').count() + canonical.matches('[').count();
        let closes = canonical.matches('}').count() + canonical.matches(']').count();
        assert_eq!(opens, closes, "{canonical}");
    }
}
