//! Bug reports, persistency-race reports, and check statistics.

use std::fmt;
use std::time::Duration;

use jaaru_pmem::PmAddr;

/// The symptom class of a detected bug, mirroring the paper's bug tables
/// (Figures 12/13/15/16).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BugKind {
    /// Out-of-bounds or null-page access ("segmentation fault" /
    /// "illegal memory access" in the paper's tables).
    IllegalAccess,
    /// A failed program sanity check (`pm_assert` / `bug()` — the paper's
    /// "assertion failure" symptom).
    AssertionFailure,
    /// A Rust panic inside guest code (e.g. a failed `assert!` or an
    /// `unwrap` on corrupted data).
    GuestPanic,
    /// The per-execution operation budget was exhausted (the paper's
    /// "getting stuck in an infinite loop" symptom).
    InfiniteLoop,
    /// The persistent pool was exhausted.
    OutOfMemory,
}

impl fmt::Display for BugKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BugKind::IllegalAccess => "illegal memory access",
            BugKind::AssertionFailure => "assertion failure",
            BugKind::GuestPanic => "guest panic",
            BugKind::InfiniteLoop => "infinite loop",
            BugKind::OutOfMemory => "out of persistent memory",
        };
        f.write_str(s)
    }
}

/// A bug found by the model checker, with everything needed to reproduce
/// it: the decision trace identifies the exact failure scenario.
#[derive(Clone, Debug)]
pub struct BugReport {
    /// Symptom class.
    pub kind: BugKind,
    /// Human-readable description.
    pub message: String,
    /// Guest source location (`file:line:column`) where the symptom
    /// manifested, when known.
    pub location: Option<String>,
    /// Execution within the scenario that hit the bug (0 = pre-failure).
    pub execution_index: usize,
    /// Ordinals (within their executions) of the failure injection points
    /// where power was lost in this scenario.
    pub crash_points: Vec<usize>,
    /// The decision trace reproducing the scenario.
    pub trace: Vec<usize>,
    /// How many explored scenarios manifested this same bug.
    pub occurrences: u64,
}

impl fmt::Display for BugReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)?;
        if let Some(loc) = &self.location {
            write!(f, " at {loc}")?;
        }
        write!(
            f,
            " (execution {}, crash points {:?}, seen in {} scenario(s))",
            self.execution_index, self.crash_points, self.occurrences
        )
    }
}

/// One candidate store a racy load could have read (the paper's §4
/// debugging output lists each store, its trace position, and its source
/// location).
#[derive(Clone, Debug)]
pub struct RaceCandidate {
    /// Execution that performed the store (`None` = the initial zeroed
    /// pool contents).
    pub exec_index: Option<usize>,
    /// Byte value observed.
    pub value: u8,
    /// Source location of the store (`file:line:column`).
    pub location: Option<String>,
}

/// A load that could read from more than one pre-failure store — the
/// typical signature of a missing cache-line flush.
#[derive(Clone, Debug)]
pub struct RaceReport {
    /// First byte of the racy load.
    pub addr: PmAddr,
    /// Source location of the load.
    pub load_location: String,
    /// Execution performing the load.
    pub execution_index: usize,
    /// The stores it may read from, newest first.
    pub candidates: Vec<RaceCandidate>,
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "load at {} (addr {}, execution {}) may read from {} stores:",
            self.load_location,
            self.addr,
            self.execution_index,
            self.candidates.len()
        )?;
        for c in &self.candidates {
            match (&c.exec_index, &c.location) {
                (Some(e), Some(loc)) => {
                    writeln!(f, "  - {:#04x} stored by execution {e} at {loc}", c.value)?
                }
                _ => writeln!(f, "  - {:#04x} from initial pool contents", c.value)?,
            }
        }
        Ok(())
    }
}

/// A performance issue: an operation with persistency cost but no
/// persistency effect. This implements the extension the paper sketches
/// in §5.1 ("Jaaru could be extended to find performance bugs such as
/// redundant cache flushes and fences") — the bug class PMTest and
/// pmemcheck report.
#[derive(Clone, Debug)]
pub struct PerfIssue {
    /// What was wasted.
    pub kind: PerfIssueKind,
    /// Source location of the operation (`file:line:column`).
    pub location: String,
    /// First byte of the flushed range.
    pub addr: PmAddr,
    /// How many times the site executed redundantly.
    pub occurrences: u64,
}

/// Classes of wasted persistency operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PerfIssueKind {
    /// A `clflush` of a cache line with no unflushed stores.
    RedundantFlush,
    /// A `clflushopt`/`clwb` of a cache line with no unflushed stores.
    RedundantFlushOpt,
    /// An `sfence` with no buffered flushes or stores to order.
    RedundantFence,
}

impl fmt::Display for PerfIssueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PerfIssueKind::RedundantFlush => "redundant clflush",
            PerfIssueKind::RedundantFlushOpt => "redundant clflushopt/clwb",
            PerfIssueKind::RedundantFence => "redundant sfence",
        };
        f.write_str(s)
    }
}

impl fmt::Display for PerfIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} of clean line at {} ({}; {} occurrence(s))",
            self.kind, self.addr, self.location, self.occurrences
        )
    }
}

/// Exploration statistics (the quantities reported in Figure 14).
#[derive(Clone, Debug, Default)]
pub struct CheckStats {
    /// Distinct failure scenarios explored (leaves of the decision tree).
    pub scenarios: u64,
    /// Program executions a fork-based implementation would perform (the
    /// paper's `#JExec.`): executions from each scenario's divergence
    /// point onward.
    pub executions: u64,
    /// Total `Program::run` invocations including replayed prefixes (the
    /// extra cost of re-execution over fork-based rollback).
    pub executions_with_replay: u64,
    /// Failure injection points in the initial pre-failure execution (the
    /// paper's `#FPoints`).
    pub failure_points: u64,
    /// Loads that faced a choice of more than one store.
    pub load_choice_points: u64,
    /// Largest may-read-from set encountered.
    pub max_rf_set: usize,
    /// Wall-clock exploration time (the paper's `JTime`).
    pub duration: Duration,
}

/// The result of a model-checking run.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// Distinct bugs found, in discovery order.
    pub bugs: Vec<BugReport>,
    /// Loads flagged as able to read multiple stores (missing-flush
    /// debugging aid), deduplicated by load location.
    pub races: Vec<RaceReport>,
    /// Wasted persistency operations (the performance-bug extension),
    /// deduplicated by site; empty unless
    /// [`Config::flag_perf_issues`](crate::Config::flag_perf_issues) is on.
    pub perf_issues: Vec<PerfIssue>,
    /// Exploration statistics.
    pub stats: CheckStats,
    /// Whether exploration stopped early (scenario/bug caps).
    pub truncated: bool,
}

impl CheckReport {
    /// `true` when no bug was found.
    pub fn is_clean(&self) -> bool {
        self.bugs.is_empty()
    }

    /// A one-paragraph summary suitable for logs.
    pub fn summary(&self) -> String {
        format!(
            "{} bug(s), {} race-flagged load(s); {} scenarios, {} executions \
             ({} incl. replays), {} failure points, {:.3}s{}",
            self.bugs.len(),
            self.races.len(),
            self.stats.scenarios,
            self.stats.executions,
            self.stats.executions_with_replay,
            self.stats.failure_points,
            self.stats.duration.as_secs_f64(),
            if self.truncated { " [truncated]" } else { "" },
        )
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.summary())?;
        for b in &self.bugs {
            writeln!(f, "  {b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bug_kinds_display() {
        assert_eq!(BugKind::IllegalAccess.to_string(), "illegal memory access");
        assert_eq!(BugKind::InfiniteLoop.to_string(), "infinite loop");
    }

    #[test]
    fn bug_report_display_mentions_scenario() {
        let b = BugReport {
            kind: BugKind::AssertionFailure,
            message: "lost committed key".into(),
            location: Some("tree.rs:10:5".into()),
            execution_index: 1,
            crash_points: vec![3],
            trace: vec![0, 1, 0],
            occurrences: 2,
        };
        let s = b.to_string();
        assert!(s.contains("assertion failure"));
        assert!(s.contains("tree.rs:10:5"));
        assert!(s.contains("execution 1"));
        assert!(s.contains("2 scenario(s)"));
    }

    #[test]
    fn race_report_lists_candidates() {
        let r = RaceReport {
            addr: PmAddr::new(64),
            load_location: "recovery.rs:5:9".into(),
            execution_index: 1,
            candidates: vec![
                RaceCandidate {
                    exec_index: Some(0),
                    value: 7,
                    location: Some("init.rs:3:5".into()),
                },
                RaceCandidate { exec_index: None, value: 0, location: None },
            ],
        };
        let s = r.to_string();
        assert!(s.contains("may read from 2 stores"));
        assert!(s.contains("initial pool contents"));
        assert!(s.contains("init.rs:3:5"));
    }

    #[test]
    fn clean_report() {
        let r = CheckReport::default();
        assert!(r.is_clean());
        assert!(r.summary().contains("0 bug(s)"));
    }
}
