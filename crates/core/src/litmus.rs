//! Litmus-test harness: exhaustive exploration of thread interleavings
//! and store-buffer evictions for small straight-line programs.
//!
//! The Jaaru checker itself uses a deterministic schedule (the paper does
//! not exhaustively explore concurrency). This module complements it for
//! *semantics validation*: given a handful of threads, each a list of
//! [`LitmusOp`]s, it enumerates every interleaving of instruction
//! executions and buffer evictions allowed by the TSO machine, collecting
//! the set of observable register outcomes and final persistency
//! constraints. The Table 1 reordering probes are built on it.

use std::collections::BTreeSet;
use std::panic::Location;

use jaaru_pmem::{CacheLineId, PmAddr};
use jaaru_tso::{CurrentRead, EvictionPolicy, FlushInterval, Seq, ThreadId, TsoMachine};

/// One instruction of a litmus thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LitmusOp {
    /// Store an 8-bit value.
    Store(PmAddr, u8),
    /// Load into the thread's next register slot.
    Load(PmAddr),
    /// `clflush` of the line containing the address.
    Clflush(PmAddr),
    /// `clflushopt` of the line containing the address.
    Clflushopt(PmAddr),
    /// `clwb` of the line containing the address — same Px86 ordering
    /// semantics as `clflushopt`; a distinct token so the conformance
    /// sweep proves the two behave identically end to end.
    Clwb(PmAddr),
    /// Store fence.
    Sfence,
    /// Full fence.
    Mfence,
    /// Locked read-modify-write (exchange): the old value is read into
    /// the thread's next register slot and the new value stored, with
    /// the implied full fence on both sides (paper §2: locked RMW
    /// instructions drain the store buffer and apply pending optimized
    /// flushes before *and* after their access).
    Rmw(PmAddr, u8),
}

/// The observable result of one complete litmus execution.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LitmusOutcome {
    /// Register values per thread, in load order.
    pub regs: Vec<Vec<u8>>,
    /// Final `(line, begin, end)` writeback constraints for every line
    /// with a non-trivial interval, in line order.
    pub flush_bounds: Vec<(u64, u64, Option<u64>)>,
}

/// One allowed `(registers, crash-persisted memory)` observable of a
/// litmus program, as produced by [`LitmusProgram::crash_outcomes`].
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LitmusCrashOutcome {
    /// Register values per thread, in load/RMW order.
    pub regs: Vec<Vec<u8>>,
    /// Persisted memory after the crash: `(address, value)` sorted by
    /// address, one entry per address the program stores to; 0 means
    /// the byte still holds its initial value.
    pub mem: Vec<(u64, u8)>,
}

/// A litmus program: one op-list per thread.
///
/// # Example: classic TSO store buffering (SB)
///
/// ```
/// use jaaru_pmem::PmAddr;
/// use jaaru::litmus::{LitmusOp, LitmusProgram};
///
/// let x = PmAddr::new(64);
/// let y = PmAddr::new(128);
/// let sb = LitmusProgram::new(vec![
///     vec![LitmusOp::Store(x, 1), LitmusOp::Load(y)],
///     vec![LitmusOp::Store(y, 1), LitmusOp::Load(x)],
/// ]);
/// let outcomes = sb.outcomes();
/// // Both threads reading 0 is allowed on TSO (stores still buffered).
/// assert!(outcomes.iter().any(|o| o.regs == vec![vec![0], vec![0]]));
/// ```
#[derive(Clone, Debug)]
pub struct LitmusProgram {
    threads: Vec<Vec<LitmusOp>>,
}

/// SplitMix64: a small deterministic generator for schedule sampling.
/// (Self-contained so the checker has no external dependencies.)
struct ScheduleRng {
    state: u64,
}

impl ScheduleRng {
    fn new(seed: u64) -> Self {
        ScheduleRng { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform-enough index into `0..n` (n is tiny; modulo bias is
    /// irrelevant for schedule sampling).
    fn pick(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

#[derive(Clone)]
struct State {
    machine: TsoMachine,
    pcs: Vec<usize>,
    regs: Vec<Vec<u8>>,
}

impl LitmusProgram {
    /// Creates a litmus program from per-thread op lists.
    ///
    /// # Panics
    ///
    /// Panics if there are no threads.
    pub fn new(threads: Vec<Vec<LitmusOp>>) -> Self {
        assert!(
            !threads.is_empty(),
            "litmus program needs at least one thread"
        );
        LitmusProgram { threads }
    }

    /// Exhaustively enumerates every interleaving of instruction execution
    /// and store-buffer eviction, returning the set of distinct outcomes.
    pub fn outcomes(&self) -> BTreeSet<LitmusOutcome> {
        let mut results = BTreeSet::new();
        self.explore(self.initial(), &mut |s| {
            results.insert(outcome_of(s));
        });
        results
    }

    /// Exhaustively enumerates interleavings like [`LitmusProgram::outcomes`],
    /// but projects each terminal state onto its **allowed crash-persisted
    /// memory states**: for every cache line the program stores to, each
    /// candidate writeback point of the line's flush interval yields one
    /// persisted snapshot, and the per-line choices combine freely (lines
    /// write back independently). The union over all executions is exactly
    /// the observable the axiomatic reference checker in `jaaru-litmus`
    /// computes, which makes this the operational side of the conformance
    /// comparison.
    ///
    /// Addresses never persisted report value 0 (initial memory).
    pub fn crash_outcomes(&self) -> BTreeSet<LitmusCrashOutcome> {
        let addrs = self.stored_addrs();
        let mut results = BTreeSet::new();
        self.explore(self.initial(), &mut |s| {
            collect_crash_outcomes(&s, &addrs, &mut results);
        });
        results
    }

    /// Sorted, deduplicated addresses the program stores to (via `Store`
    /// or `Rmw`) — the memory universe of [`LitmusProgram::crash_outcomes`].
    fn stored_addrs(&self) -> Vec<PmAddr> {
        let mut addrs: Vec<PmAddr> = self
            .threads
            .iter()
            .flatten()
            .filter_map(|op| match op {
                LitmusOp::Store(a, _) | LitmusOp::Rmw(a, _) => Some(*a),
                _ => None,
            })
            .collect();
        addrs.sort();
        addrs.dedup();
        addrs
    }

    fn initial(&self) -> State {
        State {
            machine: TsoMachine::new(EvictionPolicy::OnFence),
            pcs: vec![0; self.threads.len()],
            regs: vec![Vec::new(); self.threads.len()],
        }
    }

    fn explore(&self, state: State, sink: &mut impl FnMut(State)) {
        let mut progressed = false;
        for t in 0..self.threads.len() {
            let tid = ThreadId(t as u32);
            // Choice: execute the thread's next instruction.
            if state.pcs[t] < self.threads[t].len() {
                progressed = true;
                let mut next = state.clone();
                next.pcs[t] += 1;
                self.step(&mut next, t, self.threads[t][state.pcs[t]]);
                self.explore(next, sink);
            }
            // Choice: evict one entry from the thread's store buffer.
            let mut next = state.clone();
            if next.machine.evict_one(tid) {
                progressed = true;
                self.explore(next, sink);
            }
        }
        if !progressed {
            // All threads done and all buffers empty: record the outcome.
            // Deferred clflushopt entries keep their lines unconstrained,
            // exactly as at a power failure.
            sink(state);
        }
    }

    /// Samples `iterations` random schedules (uniformly choosing, at each
    /// step, a thread to advance or a store buffer to evict) and returns
    /// the outcomes observed — the paper's future-work idea of *fuzzing*
    /// for concurrency bugs with the controlled scheduler, usable where
    /// exhaustive interleaving ([`LitmusProgram::outcomes`]) is too large.
    ///
    /// Sampling is deterministic in `seed`; the result is always a subset
    /// of the exhaustive outcome set.
    pub fn outcomes_sampled(&self, seed: u64, iterations: u32) -> BTreeSet<LitmusOutcome> {
        let mut rng = ScheduleRng::new(seed);
        let mut results = BTreeSet::new();
        for _ in 0..iterations {
            let mut state = State {
                machine: TsoMachine::new(EvictionPolicy::OnFence),
                pcs: vec![0; self.threads.len()],
                regs: vec![Vec::new(); self.threads.len()],
            };
            loop {
                // Enumerate the enabled moves: (thread, execute) and
                // (thread, evict) pairs.
                let mut moves: Vec<(usize, bool)> = Vec::new();
                for t in 0..self.threads.len() {
                    if state.pcs[t] < self.threads[t].len() {
                        moves.push((t, false));
                    }
                    moves.push((t, true)); // eviction may be a no-op
                }
                let mut progressed = false;
                while !moves.is_empty() {
                    let pick = rng.pick(moves.len());
                    let (t, evict) = moves.swap_remove(pick);
                    if evict {
                        if state.machine.evict_one(ThreadId(t as u32)) {
                            progressed = true;
                            break;
                        }
                    } else {
                        let op = self.threads[t][state.pcs[t]];
                        state.pcs[t] += 1;
                        self.step(&mut state, t, op);
                        progressed = true;
                        break;
                    }
                }
                if !progressed {
                    break;
                }
            }
            results.insert(outcome_of(state));
        }
        results
    }

    fn step(&self, state: &mut State, t: usize, op: LitmusOp) {
        let tid = ThreadId(t as u32);
        let loc = Location::caller();
        match op {
            LitmusOp::Store(addr, v) => state.machine.store(tid, addr, &[v], loc),
            LitmusOp::Load(addr) => {
                let v = match state.machine.read_current(tid, addr) {
                    CurrentRead::Buffered(v) | CurrentRead::Cached(v) => v,
                    CurrentRead::Miss => 0, // initial memory
                };
                state.regs[t].push(v);
            }
            LitmusOp::Clflush(addr) => state.machine.clflush(tid, addr.cache_line()),
            LitmusOp::Clflushopt(addr) => state.machine.clflushopt(tid, addr.cache_line()),
            LitmusOp::Clwb(addr) => state.machine.clwb(tid, addr.cache_line()),
            LitmusOp::Sfence => state.machine.sfence(tid),
            LitmusOp::Mfence => state.machine.mfence(tid),
            LitmusOp::Rmw(addr, v) => {
                // Locked exchange: fence, read-modify-write, fence — all
                // atomically within one litmus step, which is exactly the
                // global ordering a locked instruction provides.
                state.machine.mfence(tid);
                let old = match state.machine.read_current(tid, addr) {
                    CurrentRead::Buffered(b) | CurrentRead::Cached(b) => b,
                    CurrentRead::Miss => 0,
                };
                state.regs[t].push(old);
                state.machine.store(tid, addr, &[v], loc);
                state.machine.mfence(tid);
            }
        }
    }
}

/// Expands one terminal machine state into its allowed crash states:
/// the product, over every line holding stored addresses, of the line's
/// candidate writeback points.
fn collect_crash_outcomes(
    state: &State,
    addrs: &[PmAddr],
    results: &mut BTreeSet<LitmusCrashOutcome>,
) {
    let storage = state.machine.storage();
    // Group the (sorted) address universe by cache line; line order
    // follows address order, so concatenating per-line snapshots keeps
    // the global vector address-sorted.
    let mut groups: Vec<(CacheLineId, Vec<PmAddr>)> = Vec::new();
    for &a in addrs {
        match groups.last_mut() {
            Some((line, v)) if *line == a.cache_line() => v.push(a),
            _ => groups.push((a.cache_line(), vec![a])),
        }
    }
    // Per line: the distinct persisted snapshots its writeback points
    // allow. At a completed execution the interval end is still open,
    // so every store past the guarantee is a candidate point.
    let per_line: Vec<Vec<Vec<(u64, u8)>>> = groups
        .iter()
        .map(|(line, line_addrs)| {
            let snaps: BTreeSet<Vec<(u64, u8)>> = storage
                .writeback_points(*line)
                .into_iter()
                .map(|w| {
                    line_addrs
                        .iter()
                        .map(|&a| (a.offset(), storage.snapshot_value(a, w).unwrap_or(0)))
                        .collect()
                })
                .collect();
            snaps.into_iter().collect()
        })
        .collect();
    // Odometer over the per-line alternatives.
    let mut idx = vec![0usize; per_line.len()];
    'product: loop {
        let mem: Vec<(u64, u8)> = per_line
            .iter()
            .zip(idx.iter())
            .flat_map(|(alts, &i)| alts[i].iter().copied())
            .collect();
        results.insert(LitmusCrashOutcome {
            regs: state.regs.clone(),
            mem,
        });
        let mut i = 0;
        while i < per_line.len() {
            if idx[i] + 1 < per_line[i].len() {
                idx[i] += 1;
                continue 'product;
            }
            idx[i] = 0;
            i += 1;
        }
        break;
    }
}

fn outcome_of(state: State) -> LitmusOutcome {
    let storage = state.machine.storage();
    let mut lines: Vec<CacheLineId> = storage.touched_lines().collect();
    lines.sort();
    let flush_bounds = lines
        .into_iter()
        .map(|l| {
            let iv: FlushInterval = storage.interval(l);
            let end = (!iv.end().is_infinite()).then(|| iv.end().value());
            (l.index(), iv.begin().value(), end)
        })
        .filter(|&(_, begin, end)| begin != Seq::ZERO.value() || end.is_some())
        .collect();
    LitmusOutcome {
        regs: state.regs,
        flush_bounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: PmAddr = PmAddr::new(64);
    const Y: PmAddr = PmAddr::new(128);

    fn reg_outcomes(p: &LitmusProgram) -> BTreeSet<Vec<Vec<u8>>> {
        p.outcomes().into_iter().map(|o| o.regs).collect()
    }

    #[test]
    fn store_buffering_allows_both_zero() {
        // SB: Wx1; Ry || Wy1; Rx — TSO allows r1 = r2 = 0.
        let p = LitmusProgram::new(vec![
            vec![LitmusOp::Store(X, 1), LitmusOp::Load(Y)],
            vec![LitmusOp::Store(Y, 1), LitmusOp::Load(X)],
        ]);
        let outcomes = reg_outcomes(&p);
        assert!(
            outcomes.contains(&vec![vec![0], vec![0]]),
            "W→R reordering observable"
        );
        assert!(outcomes.contains(&vec![vec![1], vec![1]]));
    }

    #[test]
    fn mfence_forbids_both_zero() {
        // SB with mfence between store and load on both threads: the
        // r1 = r2 = 0 outcome must disappear (Table 1: mfence orders all).
        let p = LitmusProgram::new(vec![
            vec![LitmusOp::Store(X, 1), LitmusOp::Mfence, LitmusOp::Load(Y)],
            vec![LitmusOp::Store(Y, 1), LitmusOp::Mfence, LitmusOp::Load(X)],
        ]);
        let outcomes = reg_outcomes(&p);
        assert!(
            !outcomes.contains(&vec![vec![0], vec![0]]),
            "mfence forbids SB outcome"
        );
        assert!(outcomes.contains(&vec![vec![1], vec![1]]));
    }

    #[test]
    fn stores_become_visible_in_program_order() {
        // Message passing: Wx1; Wy1 || Ry; Rx — TSO forbids r(y)=1, r(x)=0.
        let p = LitmusProgram::new(vec![
            vec![LitmusOp::Store(X, 1), LitmusOp::Store(Y, 1)],
            vec![LitmusOp::Load(Y), LitmusOp::Load(X)],
        ]);
        let outcomes = reg_outcomes(&p);
        assert!(
            !outcomes.contains(&vec![vec![], vec![1, 0]]),
            "no W→W reordering on TSO"
        );
        assert!(outcomes.contains(&vec![vec![], vec![1, 1]]));
        assert!(outcomes.contains(&vec![vec![], vec![0, 0]]));
    }

    #[test]
    fn own_stores_bypass_the_buffer() {
        let p = LitmusProgram::new(vec![vec![LitmusOp::Store(X, 7), LitmusOp::Load(X)]]);
        let outcomes = reg_outcomes(&p);
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes.contains(&vec![vec![7]]));
    }

    #[test]
    fn unfenced_clflushopt_may_leave_line_unconstrained() {
        // store x; clflushopt x — without a fence the flush may never take
        // effect (flush-buffer entry dropped at the failure).
        let p = LitmusProgram::new(vec![vec![LitmusOp::Store(X, 1), LitmusOp::Clflushopt(X)]]);
        let outcomes = p.outcomes();
        assert!(
            outcomes.iter().any(|o| o.flush_bounds.is_empty()),
            "some execution leaves the line unconstrained: {outcomes:?}"
        );
    }

    #[test]
    fn fenced_clflushopt_always_constrains() {
        let p = LitmusProgram::new(vec![vec![
            LitmusOp::Store(X, 1),
            LitmusOp::Clflushopt(X),
            LitmusOp::Sfence,
        ]]);
        let outcomes = p.outcomes();
        assert!(
            outcomes.iter().all(|o| !o.flush_bounds.is_empty()),
            "every execution constrains the line: {outcomes:?}"
        );
    }

    #[test]
    fn sampled_schedules_are_a_subset_of_exhaustive() {
        let p = LitmusProgram::new(vec![
            vec![LitmusOp::Store(X, 1), LitmusOp::Load(Y)],
            vec![LitmusOp::Store(Y, 1), LitmusOp::Load(X)],
        ]);
        let exhaustive = p.outcomes();
        let sampled = p.outcomes_sampled(7, 200);
        assert!(sampled.is_subset(&exhaustive));
        // Enough samples find the store-buffering relaxation too.
        assert!(sampled.iter().any(|o| o.regs == vec![vec![0], vec![0]]));
    }

    #[test]
    fn sampling_is_deterministic_in_the_seed() {
        let p = LitmusProgram::new(vec![
            vec![LitmusOp::Store(X, 1), LitmusOp::Load(Y)],
            vec![LitmusOp::Store(Y, 1), LitmusOp::Load(X)],
        ]);
        assert_eq!(p.outcomes_sampled(42, 50), p.outcomes_sampled(42, 50));
        // (Different seeds may or may not differ; determinism is the claim.)
    }

    #[test]
    fn rmw_is_dual_fenced() {
        // SB with locked exchanges instead of plain stores: the locked
        // RMW drains the buffer on both sides, so the both-old-values-
        // zero relaxation disappears.
        let p = LitmusProgram::new(vec![
            vec![LitmusOp::Rmw(X, 1), LitmusOp::Load(Y)],
            vec![LitmusOp::Rmw(Y, 1), LitmusOp::Load(X)],
        ]);
        let outcomes = reg_outcomes(&p);
        assert!(
            !outcomes.contains(&vec![vec![0, 0], vec![0, 0]]),
            "locked RMW forbids the SB relaxation"
        );
    }

    #[test]
    fn competing_rmws_serialize() {
        let p = LitmusProgram::new(vec![vec![LitmusOp::Rmw(X, 1)], vec![LitmusOp::Rmw(X, 2)]]);
        let outcomes = reg_outcomes(&p);
        assert!(!outcomes.contains(&vec![vec![0], vec![0]]));
        assert!(outcomes.contains(&vec![vec![0], vec![1]]));
        assert!(outcomes.contains(&vec![vec![2], vec![0]]));
    }

    #[test]
    fn clwb_behaves_like_clflushopt() {
        let mk = |flush: fn(PmAddr) -> LitmusOp| {
            LitmusProgram::new(vec![vec![
                LitmusOp::Store(X, 1),
                flush(X),
                LitmusOp::Sfence,
            ]])
        };
        assert_eq!(
            mk(LitmusOp::Clwb).outcomes(),
            mk(LitmusOp::Clflushopt).outcomes()
        );
    }

    #[test]
    fn crash_outcomes_of_fenced_flush_pin_the_value() {
        let p = LitmusProgram::new(vec![vec![
            LitmusOp::Store(X, 1),
            LitmusOp::Clflushopt(X),
            LitmusOp::Sfence,
        ]]);
        let crashes = p.crash_outcomes();
        assert!(
            crashes.iter().all(|c| c.mem == vec![(64, 1)]),
            "{crashes:?}"
        );
    }

    #[test]
    fn crash_outcomes_of_unflushed_store_include_initial() {
        let p = LitmusProgram::new(vec![vec![LitmusOp::Store(X, 1)]]);
        let mems: BTreeSet<Vec<(u64, u8)>> =
            p.crash_outcomes().into_iter().map(|c| c.mem).collect();
        assert_eq!(mems, BTreeSet::from([vec![(64, 0)], vec![(64, 1)]]));
    }

    #[test]
    fn clflush_always_constrains_once_evicted() {
        let p = LitmusProgram::new(vec![vec![LitmusOp::Store(X, 1), LitmusOp::Clflush(X)]]);
        let outcomes = p.outcomes();
        // Buffers fully drain before an outcome is recorded, so the
        // clflush always lands.
        assert!(outcomes.iter().all(|o| !o.flush_bounds.is_empty()));
    }
}
