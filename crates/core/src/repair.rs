//! Repair synthesis: diagnose → fix → verify.
//!
//! The lint engine attaches a typed [`FixEdit`] to every error-class
//! diagnostic (insert a flush after a store, insert a fence after a
//! flush, delete a wasted flush). This module closes the loop by
//! *applying* those edits to the recorded guest program and re-running
//! the model checker until the program is proven robust:
//!
//! 1. **Diagnose.** A baseline check collects diagnostics; their edits
//!    seed the candidate set.
//! 2. **Fix.** [`RepairedProgram`] wraps the guest in a [`PmEnv`]
//!    interposer that rewrites the operation stream in flight — edits
//!    anchor to source sites via `#[track_caller]`, exactly the
//!    locations the diagnostics named, narrowed by cache line so that
//!    interpreter-style guests (where one source line issues every
//!    store) are repaired per-line, not per-site.
//! 3. **Verify.** The fixed program is re-checked; fresh diagnostics
//!    (e.g. the inserted flush now missing a fence, or an original
//!    flush made redundant) contribute new edits for the next round,
//!    up to [`Config::repair_max_rounds`](crate::Config::repair_max_rounds).
//! 4. **Minimize.** A verified edit set is shrunk to a 1-minimal
//!    repair with [`minimize_edits`]; every probe is one more (warm)
//!    model-checking run, memoized by subset.
//!
//! A repair is reported *verified* only when its re-check finds no
//! bug, no error diagnostic, and no remaining diagnostic with an
//! applicable edit — advisory warnings without an edit (e.g. a
//! redundant fence, where deletion could unorder unseen flushes) are
//! tolerated. Re-checks reuse the crash-point snapshot cache: each
//! edit subset gets its own cache group (a distinct program variant
//! must never restore another variant's prefix), and the empty subset
//! shares the caller's group, so a repair job served by a warm daemon
//! starts from the plain check's snapshots.

use std::collections::HashMap;
use std::panic::Location;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use jaaru_analysis::{minimize_edits, parse_site, Diagnostic, FixEdit};
use jaaru_pmem::PmAddr;

use crate::config::Config;
use crate::env::PmEnv;
use crate::explorer::ModelChecker;
use crate::program::Program;
use crate::report::CheckReport;
use crate::snapshot::SharedSnapshotCache;

/// A [`FixEdit`] with its site string parsed once into the
/// `(file, line, column)` triple that [`Location`] comparisons need.
#[derive(Clone, Debug)]
struct CompiledEdit {
    edit: FixEdit,
    file: String,
    line: u32,
    column: u32,
}

impl CompiledEdit {
    fn compile(edit: &FixEdit) -> Option<CompiledEdit> {
        let (file, line, column) = parse_site(edit.site())?;
        Some(CompiledEdit {
            edit: edit.clone(),
            file: file.to_string(),
            line,
            column,
        })
    }

    /// Whether the edit anchors at this call site.
    fn at(&self, loc: &Location<'_>) -> bool {
        loc.line() == self.line && loc.column() == self.column && loc.file() == self.file
    }

    /// Whether the edit's cache-line filter admits an operation on
    /// `[addr, addr + len)`. Edits without a filter admit everything.
    fn covers(&self, addr: PmAddr, len: usize) -> bool {
        match self.edit.cache_line() {
            None => true,
            Some(line) => {
                let first = addr.cache_line().index();
                let last = (addr + len.saturating_sub(1) as u64).cache_line().index();
                first <= line && line <= last
            }
        }
    }
}

/// The in-flight edit interposer. Forwards every [`PmEnv`] operation
/// to the wrapped environment — through `#[track_caller]`, so the
/// checker still records the *guest's* source sites — and applies
/// matching edits: a flush + fence injected after a store, a fence
/// injected after a flush, or a flush suppressed entirely. Injected
/// operations are issued from a tracked frame and therefore record at
/// the guest operation's own site, which keeps diagnostics stable
/// across repair rounds.
struct RepairEnv<'a> {
    inner: &'a dyn PmEnv,
    edits: &'a [CompiledEdit],
}

impl RepairEnv<'_> {
    fn wants_flush_after(&self, loc: &Location<'_>, addr: PmAddr, len: usize) -> bool {
        self.edits.iter().any(|e| {
            matches!(e.edit, FixEdit::InsertFlush { .. }) && e.at(loc) && e.covers(addr, len)
        })
    }

    fn deletes_flush(&self, loc: &Location<'_>, addr: PmAddr, len: usize) -> bool {
        self.edits.iter().any(|e| {
            matches!(e.edit, FixEdit::DeleteFlush { .. }) && e.at(loc) && e.covers(addr, len)
        })
    }

    fn wants_fence_after(&self, loc: &Location<'_>, addr: PmAddr, len: usize) -> bool {
        self.edits.iter().any(|e| {
            matches!(e.edit, FixEdit::InsertFence { .. }) && e.at(loc) && e.covers(addr, len)
        })
    }
}

impl PmEnv for RepairEnv<'_> {
    #[track_caller]
    fn load_bytes(&self, addr: PmAddr, buf: &mut [u8]) {
        self.inner.load_bytes(addr, buf);
    }

    #[track_caller]
    fn store_bytes(&self, addr: PmAddr, bytes: &[u8]) {
        let loc = Location::caller();
        self.inner.store_bytes(addr, bytes);
        if !bytes.is_empty() && self.wants_flush_after(loc, addr, bytes.len()) {
            self.inner.clflush(addr, bytes.len());
            self.inner.sfence();
        }
    }

    #[track_caller]
    fn clflush(&self, addr: PmAddr, len: usize) {
        let loc = Location::caller();
        if self.deletes_flush(loc, addr, len) {
            return;
        }
        self.inner.clflush(addr, len);
        if self.wants_fence_after(loc, addr, len) {
            self.inner.sfence();
        }
    }

    #[track_caller]
    fn clflushopt(&self, addr: PmAddr, len: usize) {
        let loc = Location::caller();
        if self.deletes_flush(loc, addr, len) {
            return;
        }
        self.inner.clflushopt(addr, len);
        if self.wants_fence_after(loc, addr, len) {
            self.inner.sfence();
        }
    }

    #[track_caller]
    fn sfence(&self) {
        self.inner.sfence();
    }

    #[track_caller]
    fn mfence(&self) {
        self.inner.mfence();
    }

    #[track_caller]
    fn compare_exchange_u64(&self, addr: PmAddr, current: u64, new: u64) -> u64 {
        let loc = Location::caller();
        let observed = self.inner.compare_exchange_u64(addr, current, new);
        if observed == current && self.wants_flush_after(loc, addr, 8) {
            self.inner.clflush(addr, 8);
            self.inner.sfence();
        }
        observed
    }

    #[track_caller]
    fn pm_alloc(&self, size: u64, align: u64) -> PmAddr {
        self.inner.pm_alloc(size, align)
    }

    fn root(&self) -> PmAddr {
        self.inner.root()
    }

    fn pool_size(&self) -> u64 {
        self.inner.pool_size()
    }

    fn execution_index(&self) -> usize {
        self.inner.execution_index()
    }

    #[track_caller]
    fn bug(&self, msg: &str) -> ! {
        self.inner.bug(msg)
    }

    fn spawn(&self, body: &mut dyn FnMut(&dyn PmEnv)) {
        let edits = self.edits;
        self.inner.spawn(&mut |child| {
            let wrapped = RepairEnv {
                inner: child,
                edits,
            };
            body(&wrapped);
        });
    }

    fn label(&self, msg: &str) {
        self.inner.label(msg);
    }

    #[track_caller]
    fn annotate_expect_persisted(&self, addr: PmAddr, len: usize) {
        self.inner.annotate_expect_persisted(addr, len);
    }

    #[track_caller]
    fn annotate_expect_ordered(&self, a: PmAddr, a_len: usize, b: PmAddr, b_len: usize) {
        self.inner.annotate_expect_ordered(a, a_len, b, b_len);
    }

    #[track_caller]
    fn annotate_commit_var(&self, addr: PmAddr, len: usize) {
        self.inner.annotate_commit_var(addr, len);
    }
}

/// A guest program with an edit set applied in flight.
///
/// Runs the wrapped program against a `RepairEnv` interposer; with an
/// empty edit set the operation stream — including every recorded
/// source site — is identical to the unwrapped program's, so repaired
/// and original programs are directly comparable by
/// [`CheckReport::digest`].
pub struct RepairedProgram<'a> {
    inner: &'a (dyn Program + Sync),
    edits: Vec<CompiledEdit>,
    name: String,
}

impl<'a> RepairedProgram<'a> {
    /// Wraps `inner` with `edits`. Edits whose site string does not
    /// parse as `file:line:column` are ignored.
    pub fn new(inner: &'a (dyn Program + Sync), edits: &[FixEdit]) -> Self {
        RepairedProgram {
            inner,
            edits: edits.iter().filter_map(CompiledEdit::compile).collect(),
            name: format!("repaired:{}", inner.name()),
        }
    }
}

impl Program for RepairedProgram<'_> {
    fn run(&self, env: &dyn PmEnv) {
        let wrapped = RepairEnv {
            inner: env,
            edits: &self.edits,
        };
        self.inner.run(&wrapped);
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// The result of a repair-synthesis run.
#[derive(Clone, Debug)]
pub struct RepairOutcome {
    /// Name of the program that was repaired.
    pub program: String,
    /// When `verified`, the proven 1-minimal edit set; otherwise the
    /// candidate set assembled before giving up.
    pub edits: Vec<FixEdit>,
    /// Whether the edit set was proven: the re-check found no bug, no
    /// error diagnostic, and no remaining diagnostic carrying an edit.
    pub verified: bool,
    /// Diagnose→fix→re-check rounds performed (baseline excluded).
    pub rounds: usize,
    /// Total model-checking runs: baseline + rounds + minimization
    /// probes (memoized probes are not re-run and not re-counted).
    pub rechecks: u64,
    /// The baseline (unrepaired) report.
    pub baseline: CheckReport,
    /// The report for the final edit set; `None` when no edit was ever
    /// derivable (the baseline is then the only evidence).
    pub repaired: Option<CheckReport>,
    /// Every distinct diagnostic observed across all rounds,
    /// deduplicated by `(kind, site)` in first-seen order.
    pub diagnosed: Vec<Diagnostic>,
}

impl RepairOutcome {
    /// The diagnostics of the final verified re-check (empty unless
    /// `verified`); what remains is advisory-only by construction.
    pub fn residual_warnings(&self) -> usize {
        if !self.verified {
            return 0;
        }
        self.repaired.as_ref().map_or(0, |r| r.diagnostics.len())
    }

    /// Deterministic JSON rendering: report *summaries* instead of full
    /// reports, so the bytes are identical across worker counts and
    /// cache states. Shared by `jaaru_cli repair --format json` and the
    /// serve daemon's `repair` artifact.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let summarize = |r: &CheckReport| {
            format!(
                "{{\"bugs\": {}, \"errors\": {}, \"diagnostics\": {}}}",
                r.bugs.len(),
                r.diagnostics.iter().filter(|d| d.is_error()).count(),
                r.diagnostics.len()
            )
        };
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"program\": \"{}\",", self.program.escape_default());
        let _ = writeln!(out, "  \"verified\": {},", self.verified);
        let _ = writeln!(out, "  \"rounds\": {},", self.rounds);
        let _ = writeln!(out, "  \"rechecks\": {},", self.rechecks);
        let _ = writeln!(out, "  \"diagnosed\": {},", self.diagnosed.len());
        let _ = writeln!(out, "  \"edits\": [");
        for (i, e) in self.edits.iter().enumerate() {
            let comma = if i + 1 < self.edits.len() { "," } else { "" };
            let line = e
                .cache_line()
                .map_or_else(|| "null".to_string(), |l| l.to_string());
            let _ = writeln!(
                out,
                "    {{\"edit\": \"{}\", \"site\": \"{}\", \"cache_line\": {line}, \
                 \"action\": \"{}\"}}{comma}",
                e.kind_str(),
                e.site().escape_default(),
                e.to_string().escape_default()
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"baseline\": {},", summarize(&self.baseline));
        match &self.repaired {
            Some(r) => {
                let _ = writeln!(out, "  \"repaired\": {}", summarize(r));
            }
            None => {
                let _ = writeln!(out, "  \"repaired\": null");
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Drives repair synthesis over a [`ModelChecker`] configuration.
/// Mirrors the checker's builder surface: an optional shared snapshot
/// cache (with a base group the per-subset groups are derived from)
/// and an optional cooperative abort flag.
pub struct RepairDriver {
    config: Config,
    cache: Option<(SharedSnapshotCache, u64)>,
    abort: Option<Arc<AtomicBool>>,
}

impl RepairDriver {
    /// A driver checking with `config`. The config's lint passes decide
    /// which diagnostics — and therefore which edits — can arise.
    pub fn new(config: Config) -> Self {
        RepairDriver {
            config,
            cache: None,
            abort: None,
        }
    }

    /// Reuses `cache` across all re-checks. The empty edit subset maps
    /// to `group` itself (sharing any warm prefixes a plain check of
    /// the same program left there); every non-empty subset gets a
    /// group derived from `group` and the subset's content.
    pub fn shared_cache(&mut self, cache: SharedSnapshotCache, group: u64) -> &mut Self {
        self.cache = Some((cache, group));
        self
    }

    /// Cooperative cancellation, forwarded to every re-check.
    pub fn abort_flag(&mut self, flag: Arc<AtomicBool>) -> &mut Self {
        self.abort = Some(flag);
        self
    }

    /// Runs diagnose → fix → verify → minimize on `program`.
    pub fn synthesize(&self, program: &(dyn Program + Sync)) -> RepairOutcome {
        let mut memo: HashMap<Vec<FixEdit>, CheckReport> = HashMap::new();
        let mut rechecks: u64 = 0;
        let mut run = |edits: &[FixEdit], rechecks: &mut u64| -> CheckReport {
            if let Some(r) = memo.get(edits) {
                return r.clone();
            }
            let repaired = RepairedProgram::new(program, edits);
            let mut checker = ModelChecker::new(self.config.clone());
            if let Some((cache, base)) = &self.cache {
                checker.shared_cache(cache.clone(), base ^ subset_group(edits));
            }
            if let Some(flag) = &self.abort {
                checker.abort_flag(Arc::clone(flag));
            }
            *rechecks += 1;
            let report = checker.check(&repaired);
            memo.insert(edits.to_vec(), report.clone());
            report
        };

        let baseline = run(&[], &mut rechecks);
        let mut diagnosed = Vec::new();
        absorb(&mut diagnosed, &baseline);
        if is_fixed(&baseline) {
            return RepairOutcome {
                program: program.name().to_string(),
                edits: Vec::new(),
                verified: true,
                rounds: 0,
                rechecks,
                repaired: Some(baseline.clone()),
                baseline,
                diagnosed,
            };
        }

        let mut edits = derive_edits(&baseline, &[]);
        let mut rounds = 0;
        let mut fixed = false;
        if !edits.is_empty() {
            for _ in 0..self.config.repair_max_rounds_value() {
                rounds += 1;
                let report = run(&edits, &mut rechecks);
                absorb(&mut diagnosed, &report);
                if is_fixed(&report) {
                    fixed = true;
                    break;
                }
                let new = derive_edits(&report, &edits);
                if !new.is_empty() {
                    edits.extend(new);
                    continue;
                }
                // Stuck: still broken, but the surviving failure yields
                // no (new) diagnostic. Escalate once by widening every
                // per-line edit to its whole site — the failing scenario
                // may hinge on the same store touching a cache line no
                // diagnostic ever named (a crash killing recovery before
                // the localization pass can blame it). If everything is
                // already site-wide there is nothing left to try.
                let widened = widen_edits(&edits);
                if widened == edits {
                    break;
                }
                edits = widened;
            }
        }

        if fixed {
            edits = minimize_edits(edits, |subset| is_fixed(&run(subset, &mut rechecks)));
        }
        let repaired = memo.get(&edits).cloned();
        RepairOutcome {
            program: program.name().to_string(),
            edits,
            verified: fixed,
            rounds,
            rechecks,
            baseline,
            repaired,
            diagnosed,
        }
    }
}

/// One-shot repair synthesis with a private snapshot cache per
/// re-check: `RepairDriver::new(config).synthesize(program)`.
pub fn synthesize_repair(config: &Config, program: &(dyn Program + Sync)) -> RepairOutcome {
    RepairDriver::new(config.clone()).synthesize(program)
}

/// The repair success predicate: no bug, no error diagnostic, and no
/// remaining diagnostic with an applicable edit. Advisory warnings
/// that carry no edit (e.g. a redundant fence) are tolerated.
fn is_fixed(report: &CheckReport) -> bool {
    report.is_clean()
        && report
            .diagnostics
            .iter()
            .all(|d| !d.is_error() && d.suggestion.is_none())
}

/// Edits proposed by `report` that are not already in `known`,
/// deduplicated in diagnostic order (deterministic: the checker merges
/// diagnostics in trace order at every worker count).
fn derive_edits(report: &CheckReport, known: &[FixEdit]) -> Vec<FixEdit> {
    let mut out: Vec<FixEdit> = Vec::new();
    for d in &report.diagnostics {
        let Some(e) = &d.suggestion else { continue };
        if known.contains(e) || out.contains(e) {
            continue;
        }
        // A site resurfacing with a different cache line will never
        // converge line by line (an allocator helper touches fresh
        // lines on every call): widen to the site-wide edit instead.
        // Once the widened edit is itself known, the site has nothing
        // left to offer and the diagnostic no longer derives anything.
        let candidate = if known.iter().chain(&out).any(|k| k.same_fix(e)) {
            widen(e)
        } else {
            e.clone()
        };
        if !known.contains(&candidate) && !out.contains(&candidate) {
            out.push(candidate);
        }
    }
    out
}

/// Widening is correctness-monotone for insertions only: a site-wide
/// flush or fence at worst costs performance, while a site-wide
/// *deletion* would remove every flush the site issues — catastrophic
/// for interpreter-style guests, where one source line emits them all.
/// Deletions therefore always stay at cache-line scope.
fn widen(e: &FixEdit) -> FixEdit {
    match e {
        FixEdit::DeleteFlush { .. } => e.clone(),
        _ => e.generalized(),
    }
}

/// Every edit widened to site scope where that is safe, deduplicated in
/// first-seen order (several per-line edits at one site collapse into
/// one).
fn widen_edits(edits: &[FixEdit]) -> Vec<FixEdit> {
    let mut out: Vec<FixEdit> = Vec::new();
    for e in edits {
        let g = widen(e);
        if !out.contains(&g) {
            out.push(g);
        }
    }
    out
}

fn absorb(diagnosed: &mut Vec<Diagnostic>, report: &CheckReport) {
    for d in &report.diagnostics {
        if !diagnosed
            .iter()
            .any(|x| x.kind == d.kind && x.site == d.site)
        {
            diagnosed.push(d.clone());
        }
    }
}

/// FNV-1a over the edit set's rendered form, used to derive a snapshot
/// cache group per program variant. The empty subset maps to `0` so
/// `base ^ 0 == base`: the baseline re-check shares the caller's group.
fn subset_group(edits: &[FixEdit]) -> u64 {
    if edits.is_empty() {
        return 0;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for e in edits {
        for b in e.to_string().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use jaaru_analysis::DiagnosticKind;

    fn lint_config() -> Config {
        let mut c = Config::new();
        c.pool_size(4096)
            .max_ops_per_execution(2_000)
            .max_scenarios(500)
            .lints(true)
            .lint_cross_thread(true)
            .lint_torn_stores(true);
        c
    }

    /// Commit-store idiom with the data store never flushed: recovery
    /// can observe the commit flag without the data (paper Fig. 4).
    fn missing_flush(env: &dyn PmEnv) {
        let root = env.root();
        let data = root + 64;
        if env.is_recovery() {
            if env.load_u64(root) == 1 {
                env.pm_assert(env.load_u64(data) == 42, "committed data lost");
            }
            return;
        }
        env.store_u64(data, 42);
        env.store_u64(root, 1);
        env.clflush(root, 8);
        env.sfence();
    }

    /// Same shape, correctly persisted.
    fn robust(env: &dyn PmEnv) {
        let root = env.root();
        let data = root + 64;
        if env.is_recovery() {
            if env.load_u64(root) == 1 {
                env.pm_assert(env.load_u64(data) == 42, "committed data lost");
            }
            return;
        }
        env.store_u64(data, 42);
        env.clflush(data, 8);
        env.sfence();
        env.store_u64(root, 1);
        env.clflush(root, 8);
        env.sfence();
    }

    #[test]
    fn repairs_a_missing_flush_and_proves_it() {
        let outcome = synthesize_repair(&lint_config(), &missing_flush);
        assert!(
            !outcome.baseline.is_clean() || outcome.baseline.has_errors(),
            "baseline must exhibit the fault"
        );
        assert!(outcome.verified, "repair must verify: {:?}", outcome.edits);
        assert!(!outcome.edits.is_empty());
        assert!(outcome
            .edits
            .iter()
            .all(|e| !matches!(e, FixEdit::DeleteFlush { .. })));
        let repaired = outcome.repaired.expect("verified outcome has a report");
        assert!(repaired.is_clean());
        assert!(!repaired.has_errors());
        assert!(outcome
            .diagnosed
            .iter()
            .any(|d| d.kind == DiagnosticKind::MissingFlush));
    }

    #[test]
    fn verified_edit_set_is_one_minimal() {
        let outcome = synthesize_repair(&lint_config(), &missing_flush);
        assert!(outcome.verified);
        for i in 0..outcome.edits.len() {
            let mut subset = outcome.edits.clone();
            subset.remove(i);
            let program = RepairedProgram::new(&missing_flush, &subset);
            let report = ModelChecker::new(lint_config()).check(&program);
            assert!(
                !is_fixed(&report),
                "dropping edit {i} ({}) should break the repair",
                outcome.edits[i]
            );
        }
    }

    #[test]
    fn clean_program_repairs_to_the_empty_set() {
        let outcome = synthesize_repair(&lint_config(), &robust);
        assert!(outcome.verified);
        assert!(outcome.edits.is_empty());
        assert_eq!(outcome.rounds, 0);
        assert_eq!(outcome.rechecks, 1);
    }

    #[test]
    fn empty_edit_set_preserves_the_operation_stream() {
        // The interposer must be transparent: with no edits, every
        // recorded site — and therefore the whole report digest — is
        // identical to the unwrapped program's.
        let wrapped = RepairedProgram::new(&missing_flush, &[]);
        let direct = ModelChecker::new(lint_config()).check(&missing_flush);
        let through = ModelChecker::new(lint_config()).check(&wrapped);
        assert_eq!(direct.digest(), through.digest());
        assert_eq!(wrapped.name(), "repaired:<closure>");
    }

    #[test]
    fn delete_flush_edit_removes_a_redundant_flush() {
        fn doubled(env: &dyn PmEnv) {
            let root = env.root();
            env.store_u64(root, 7);
            env.clflush(root, 8);
            env.clflush(root, 8); // same line, nothing stored in between
            env.sfence();
        }
        let mut config = lint_config();
        config.flag_perf_issues(true).lint_flush_redundancy(true);
        let outcome = synthesize_repair(&config, &doubled);
        assert!(outcome.verified, "diagnosed: {:?}", outcome.diagnosed);
        assert!(
            outcome
                .edits
                .iter()
                .any(|e| matches!(e, FixEdit::DeleteFlush { .. })),
            "edits: {:?}",
            outcome.edits
        );
        let repaired = outcome.repaired.expect("report");
        assert!(
            repaired.diagnostics.is_empty(),
            "{:?}",
            repaired.diagnostics
        );
    }

    #[test]
    fn cached_rechecks_share_the_baseline_group() {
        let cache = SharedSnapshotCache::new(1 << 20);
        let mut driver = RepairDriver::new(lint_config());
        driver.shared_cache(cache.clone(), 0x1234);
        let a = driver.synthesize(&missing_flush);
        let warm = cache.stats();
        let b = driver.synthesize(&missing_flush);
        assert_eq!(a.edits, b.edits);
        assert_eq!(a.verified, b.verified);
        assert!(
            cache.stats().hits > warm.hits,
            "second synthesis must hit the warm cache"
        );
        assert_eq!(subset_group(&[]), 0);
        assert_ne!(subset_group(&a.edits), 0);
    }
}
