//! The uninstrumented pass-through environment.

use std::cell::RefCell;

use jaaru_pmem::{PmAddr, PmPool};

use crate::PmEnv;

/// A [`PmEnv`] that executes directly against a simulated pool with no
/// model checking: stores land immediately, flushes and fences are no-ops.
///
/// Uses:
///
/// * baseline for the §5.2 instrumentation-overhead measurement (the
///   paper reports Jaaru's 736× per-execution slowdown against native
///   execution),
/// * fast functional testing of workloads (does the B-tree insert/lookup
///   logic work at all, before asking whether it is crash consistent).
///
/// # Example
///
/// ```
/// use jaaru::{NativeEnv, PmEnv};
///
/// let env = NativeEnv::new(4096);
/// let node = env.pm_alloc(16, 8);
/// env.store_u64(node, 99);
/// env.persist(node, 8); // no-op here, checked under the model checker
/// assert_eq!(env.load_u64(node), 99);
/// ```
#[derive(Debug)]
pub struct NativeEnv {
    pool: RefCell<PmPool>,
}

impl NativeEnv {
    /// Creates a native environment over a fresh zeroed pool.
    pub fn new(pool_size: usize) -> Self {
        NativeEnv {
            pool: RefCell::new(PmPool::new(pool_size)),
        }
    }

    /// Wraps an existing pool (e.g. a materialized post-failure state).
    pub fn with_pool(pool: PmPool) -> Self {
        NativeEnv {
            pool: RefCell::new(pool),
        }
    }

    /// Consumes the environment, returning the pool contents.
    pub fn into_pool(self) -> PmPool {
        self.pool.into_inner()
    }
}

impl PmEnv for NativeEnv {
    #[track_caller]
    fn load_bytes(&self, addr: PmAddr, buf: &mut [u8]) {
        self.pool
            .borrow()
            .read(addr, buf)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    #[track_caller]
    fn store_bytes(&self, addr: PmAddr, bytes: &[u8]) {
        self.pool
            .borrow_mut()
            .write(addr, bytes)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    fn clflush(&self, _addr: PmAddr, _len: usize) {}

    fn clflushopt(&self, _addr: PmAddr, _len: usize) {}

    fn sfence(&self) {}

    fn mfence(&self) {}

    #[track_caller]
    fn compare_exchange_u64(&self, addr: PmAddr, current: u64, new: u64) -> u64 {
        let observed = self.load_u64(addr);
        if observed == current {
            self.store_u64(addr, new);
        }
        observed
    }

    #[track_caller]
    fn pm_alloc(&self, size: u64, align: u64) -> PmAddr {
        self.pool
            .borrow_mut()
            .alloc(size, align)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn root(&self) -> PmAddr {
        self.pool.borrow().root()
    }

    fn pool_size(&self) -> u64 {
        self.pool.borrow().size()
    }

    fn execution_index(&self) -> usize {
        0
    }

    #[track_caller]
    fn bug(&self, msg: &str) -> ! {
        panic!("bug: {msg}");
    }

    fn spawn(&self, body: &mut dyn FnMut(&dyn PmEnv)) {
        body(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flushes_and_fences_are_noops() {
        let env = NativeEnv::new(4096);
        let a = env.root();
        env.store_u64(a, 1);
        env.clflush(a, 8);
        env.clflushopt(a, 8);
        env.clwb(a, 8);
        env.sfence();
        env.mfence();
        assert_eq!(env.load_u64(a), 1);
    }

    #[test]
    fn cas_semantics() {
        let env = NativeEnv::new(4096);
        let a = env.root();
        env.store_u64(a, 5);
        assert_eq!(env.compare_exchange_u64(a, 5, 6), 5);
        assert_eq!(env.load_u64(a), 6);
        assert_eq!(
            env.compare_exchange_u64(a, 5, 7),
            6,
            "failed CAS returns observed"
        );
        assert_eq!(env.load_u64(a), 6);
    }

    #[test]
    #[should_panic(expected = "null page")]
    fn illegal_access_panics() {
        let env = NativeEnv::new(4096);
        env.load_u8(PmAddr::NULL);
    }

    #[test]
    #[should_panic(expected = "bug: corrupted")]
    fn bug_panics() {
        let env = NativeEnv::new(4096);
        env.pm_assert(false, "corrupted");
    }

    #[test]
    fn spawn_runs_inline() {
        let env = NativeEnv::new(4096);
        let a = env.root();
        let mut done = false;
        env.spawn(&mut |e| {
            e.store_u64(a, 3);
            done = true;
        });
        assert!(done);
        assert_eq!(env.load_u64(a), 3);
    }

    #[test]
    fn pool_roundtrip() {
        let env = NativeEnv::new(4096);
        env.store_u64(env.root(), 42);
        let pool = env.into_pool();
        let env2 = NativeEnv::with_pool(pool);
        assert_eq!(env2.load_u64(env2.root()), 42);
    }
}
