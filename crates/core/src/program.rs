//! The program-under-test abstraction.

use crate::PmEnv;

/// A persistent-memory program the checker can execute repeatedly.
///
/// `run` is invoked once per execution of a failure scenario: first for
/// the pre-failure execution, then — after each injected power failure —
/// again from the top, exactly as a real PM program restarts after a
/// crash. The program distinguishes the cases the way real programs do,
/// by inspecting its persistent state (a header magic, a commit flag), or
/// via [`PmEnv::is_recovery`] for convenience.
///
/// Programs must be deterministic given the environment: no wall-clock
/// time, no unseeded randomness, no external I/O. This is what makes
/// re-execution-based exploration exhaustive (the original Jaaru gets the
/// same property from `fork`-based rollback).
///
/// Any `Fn(&dyn PmEnv)` closure is a program:
///
/// ```
/// use jaaru::{Config, ModelChecker, PmEnv};
///
/// let report = ModelChecker::new(Config::new()).check(&|env: &dyn PmEnv| {
///     let root = env.root();
///     env.store_u64(root, 1);
///     env.persist(root, 8);
/// });
/// assert!(report.is_clean());
/// ```
pub trait Program {
    /// Runs one execution against the environment.
    fn run(&self, env: &dyn PmEnv);

    /// A short name for logs and tables.
    fn name(&self) -> &str {
        "<anonymous>"
    }
}

impl<F: Fn(&dyn PmEnv)> Program for F {
    fn run(&self, env: &dyn PmEnv) {
        self(env)
    }

    fn name(&self) -> &str {
        "<closure>"
    }
}

/// Wraps a program with a display name.
///
/// ```
/// use jaaru::{Named, PmEnv, Program};
///
/// let p = Named::new("counter", |env: &dyn PmEnv| {
///     env.store_u64(env.root(), 1);
/// });
/// assert_eq!(p.name(), "counter");
/// ```
pub struct Named<P> {
    name: String,
    inner: P,
}

impl<P: Program> Named<P> {
    /// Attaches `name` to `inner`.
    pub fn new(name: impl Into<String>, inner: P) -> Self {
        Named {
            name: name.into(),
            inner,
        }
    }
}

impl<P: Program> Program for Named<P> {
    fn run(&self, env: &dyn PmEnv) {
        self.inner.run(env)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NativeEnv;

    #[test]
    fn closures_are_programs() {
        let p = |env: &dyn PmEnv| env.store_u8(env.root(), 1);
        let env = NativeEnv::new(4096);
        p.run(&env);
        assert_eq!(env.load_u8(env.root()), 1);
        assert_eq!(Program::name(&p), "<closure>");
    }

    #[test]
    fn named_wrapper_delegates() {
        let p = Named::new("store-one", |env: &dyn PmEnv| env.store_u8(env.root(), 1));
        let env = NativeEnv::new(4096);
        p.run(&env);
        assert_eq!(p.name(), "store-one");
        assert_eq!(env.load_u8(env.root()), 1);
    }
}
