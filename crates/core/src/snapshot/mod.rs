//! Crash-point checkpoints of checker state.
//!
//! This is the checker half of the snapshot subsystem (the generic LRU
//! cache lives in the `jaaru-snapshot` crate): what exactly gets
//! captured when a scenario reaches a crash point, and how the explorer
//! keys and reuses those captures.
//!
//! A power failure discards the guest's volatile state by definition, so
//! the guest closure never needs to be resumed mid-flight — recovery
//! always runs `Program::run` fresh. The only state that must round-trip
//! is the *checker's*: the stack of crashed executions' storage (store
//! queues and writeback intervals, which post-failure reads refine
//! in-place — hence copy-on-restore), crash bookkeeping, race/diagnostic
//! accumulators, lint traces, and the decision-log position. A snapshot
//! is taken immediately after
//! [`advance_execution`](crate::checker_env::CheckerEnv::advance_execution)
//! and keyed by the decision-trace prefix consumed so far; since that
//! prefix ends in a crash decision (alternative `1`) and fresh decisions
//! always choose `0`, a cached key can only match inside a later
//! scenario's *prescribed* prefix — restoring is always equivalent to
//! replaying those executions.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use jaaru_analysis::DiagnosticSet;
use jaaru_snapshot::{ShardedCache, SnapshotPayload, SnapshotStats};
use jaaru_tso::{ExecutionStorage, OpTrace};

use crate::decision::Decision;
use crate::report::RaceReport;

/// A shareable cache of crash-point checkpoints, keyed by `(group,
/// consumed decision-trace prefix)`.
///
/// One-shot checks create a private one per run (group `0`); a serving
/// daemon creates one for its lifetime and hands every check the same
/// handle with a per-(program, config) group via
/// [`ModelChecker::shared_cache`](crate::ModelChecker::shared_cache),
/// so repeated submissions of the same job start from a warm cache.
/// Sharing is sound because restoring a snapshot is outcome-equivalent
/// to replaying the prefix it covers: cache contents — whoever put them
/// there — affect only performance, never results, so
/// [`CheckReport::digest`](crate::CheckReport::digest) is byte-identical
/// across cold caches, warm caches, and worker counts. Internally the
/// cache is sharded with per-shard locking (see
/// [`jaaru_snapshot::ShardedCache`]); clones share the same storage.
#[derive(Clone)]
pub struct SharedSnapshotCache {
    inner: Arc<ShardedCache<CheckerSnapshot>>,
}

impl SharedSnapshotCache {
    /// A cache with a `cap_bytes` byte budget (split across shards).
    pub fn new(cap_bytes: usize) -> Self {
        SharedSnapshotCache {
            inner: Arc::new(ShardedCache::new(cap_bytes)),
        }
    }

    /// Lifetime counters summed across shards. For a per-run cache this
    /// is the run's cache activity; long-lived caches diff two reads via
    /// [`SnapshotStats::since`] to attribute activity to one job.
    pub fn stats(&self) -> SnapshotStats {
        self.inner.stats()
    }

    /// Cached snapshots across all groups.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Runs `read` on the snapshot with the longest prefix of `plan`
    /// cached in `group`, under the owning shard's lock.
    pub(crate) fn lookup<R>(
        &self,
        group: u64,
        plan: &[usize],
        read: impl FnOnce(&CheckerSnapshot) -> R,
    ) -> Option<R> {
        self.inner.lookup(group, plan, read)
    }

    /// Whether a snapshot is cached under exactly `(group, key)`.
    pub(crate) fn contains(&self, group: u64, key: &[usize]) -> bool {
        self.inner.contains(group, key)
    }

    /// Caches `snap` under `(group, key)` (no-op if already present).
    pub(crate) fn insert(&self, group: u64, key: Vec<usize>, snap: CheckerSnapshot) {
        self.inner.insert(group, key, snap);
    }
}

impl fmt::Debug for SharedSnapshotCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedSnapshotCache")
            .field("entries", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Everything a post-failure execution needs from the checker's past:
/// the frozen state of a [`CheckerEnv`](crate::checker_env::CheckerEnv)
/// right after a power failure was injected, minus the per-execution
/// volatile state that `advance_execution` resets anyway (op budget,
/// bump cursor, thread ids — re-initialized fresh on restore).
pub(crate) struct CheckerSnapshot {
    /// Storage of every crashed execution, oldest first. Post-failure
    /// reads *mutate* these (interval refinement), so restoring clones.
    pub(crate) stack: Vec<ExecutionStorage>,
    /// Executions completed so far — exactly the `Program::run`
    /// invocations a restore saves over full replay.
    pub(crate) exec_index: usize,
    pub(crate) points_per_exec: Vec<usize>,
    pub(crate) crash_points: Vec<usize>,
    pub(crate) races: Vec<RaceReport>,
    pub(crate) race_keys: HashSet<String>,
    pub(crate) load_choice_points: u64,
    pub(crate) max_rf_set: usize,
    pub(crate) diagnostics: DiagnosticSet,
    pub(crate) work_since_fence: u64,
    pub(crate) op_traces: Vec<OpTrace>,
    /// Per-line recovery read counts accumulated over the snapshotted
    /// executions (the slicing footprint observations up to this point).
    pub(crate) recovery_reads: HashMap<u64, u64>,
    /// Injection points the prune oracle skipped in the prefix.
    pub(crate) points_skipped: u64,
    /// Full metadata of the consumed decision prefix, so a restore into
    /// a `DecisionLog::from_trace` placeholder log can rehydrate the
    /// alternative counts and execution indices replay would have
    /// derived (divergence accounting and sibling expansion depend on
    /// them).
    pub(crate) prefix: Vec<Decision>,
    /// Estimated footprint, computed once at capture time.
    pub(crate) bytes: usize,
}

impl CheckerSnapshot {
    /// `Program::run` invocations restoring this snapshot skips.
    pub(crate) fn executions_saved(&self) -> usize {
        self.exec_index
    }
}

impl SnapshotPayload for CheckerSnapshot {
    fn approx_bytes(&self) -> usize {
        self.bytes
    }
}

/// Estimates a snapshot's heap footprint. Called once at capture; the
/// cache uses the result for LRU byte accounting.
pub(crate) fn estimate_bytes(
    stack: &[ExecutionStorage],
    op_traces: &[OpTrace],
    races: &[RaceReport],
    prefix: &[Decision],
    recovery_reads: &HashMap<u64, u64>,
) -> usize {
    let storage: usize = stack.iter().map(ExecutionStorage::approx_bytes).sum();
    let traces: usize = op_traces.iter().map(OpTrace::approx_bytes).sum();
    // Races carry strings; a flat per-entry estimate is plenty for
    // eviction purposes.
    let races: usize = races
        .iter()
        .map(|r| 96 + r.load_location.len() + r.candidates.len() * 64)
        .sum();
    let prefix = std::mem::size_of_val(prefix);
    let reads = recovery_reads.len() * 2 * std::mem::size_of::<u64>();
    256 + storage + traces + races + prefix + reads
}
