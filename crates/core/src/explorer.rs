//! The exploration driver: depth-first search over failure scenarios.
//!
//! This is the re-execution form of the paper's `Explore` algorithm
//! (Figure 11). Each iteration runs one complete failure scenario — a
//! pre-failure execution, zero or more injected power failures, and the
//! recovery executions between them — steered by a decision trace. When a
//! scenario finishes, the driver backtracks to the deepest decision with
//! unexplored alternatives and reruns. The tree is exhausted when no
//! decision can be advanced, at which point every equivalence class of
//! post-failure executions (defined by which pre-failure stores the
//! post-failure loads read) has been explored exactly once.
//!
//! Re-execution normally replays a scenario's pre-failure prefix from
//! scratch. With snapshots enabled (the default), the driver instead
//! checkpoints checker state at each crash point and restores the longest
//! cached prefix of the next scenario's decision trace, starting it
//! directly at recovery — the original system's fork-based rollback,
//! without a guest process to fork (see `crate::snapshot`).

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use jaaru_analysis::Diagnostic;
use jaaru_tso::{OpTrace, TraceOpKind};

use crate::checker_env::{CheckerEnv, PruneOracle};
use crate::config::Config;
use crate::decision::DecisionLog;
use crate::lint::lint_scenario;
use crate::parallel::merge::ReportAccumulator;
use crate::report::{BugKind, BugReport, CheckReport, CheckStats, RaceReport, SliceSummary};
use crate::signal::{
    install_panic_hook, panic_message, take_last_panic_location, with_quiet_panics, AbortSignal,
    CrashSignal,
};
use crate::snapshot::SharedSnapshotCache;
use crate::Program;

/// The snapshot cache a scenario consults, with the key group its
/// entries live under: `(handle, group)`. `Copy` so the sequential loop
/// and every parallel worker can share one resolved reference.
pub(crate) type CacheRef<'a> = Option<(&'a SharedSnapshotCache, u64)>;

/// Everything one completed failure scenario contributes to the final
/// report. Both the sequential DFS and the parallel workers produce
/// these; [`ReportAccumulator`] folds them — in canonical trace order —
/// into a [`CheckReport`].
#[derive(Clone, Debug)]
pub(crate) struct ScenarioOutcome {
    /// The scenario's complete decision trace (its identity, and the
    /// canonical sort key for deterministic merging).
    pub trace: Vec<usize>,
    /// `Program::run` invocations this scenario actually performed
    /// (replayed prefix executions included, restored ones not).
    pub executions_replayed: usize,
    /// Prefix executions skipped by restoring a crash-point snapshot
    /// instead of replaying them. `executions_replayed +
    /// executions_restored` is the scenario's logical execution count —
    /// invariant across snapshot settings.
    pub executions_restored: usize,
    /// Execution index from which this scenario diverged from its
    /// predecessor (fork-equivalent accounting).
    pub divergence: usize,
    /// Loads that faced more than one possible store.
    pub load_choice_points: u64,
    /// Largest may-read-from set encountered.
    pub max_rf_set: usize,
    /// Injection points in the scenario's first execution.
    pub failure_points: u64,
    /// Racy loads observed (when race flagging is on).
    pub races: Vec<RaceReport>,
    /// Diagnostics this scenario contributes: perf warnings (when perf
    /// flagging is on) and lint findings (when lints are on).
    pub diagnostics: Vec<Diagnostic>,
    /// The bug this scenario hit, if any, with crash points and trace
    /// filled in.
    pub bug: Option<BugReport>,
    /// Per-line recovery read counts observed by this scenario, sorted
    /// by line (slicing footprint observations).
    pub recovery_reads: Vec<(u64, u64)>,
    /// Injection points the prune oracle skipped in this scenario.
    pub points_skipped: u64,
    /// The complete pre-failure operation trace, present only for the
    /// crash-free, bug-free scenario with lints on (one per run): the
    /// input of the footprint-driven dead-flush pass.
    pub clean_trace: Option<OpTrace>,
    /// Every execution's op trace (pre-failure first, recoveries after),
    /// kept only under [`Config::collect_traces`] — the static slicing
    /// pass ([`ModelChecker::slice`]) consumes them. Empty otherwise, so
    /// ordinary runs never retain per-scenario traces past the merge.
    pub op_traces: Vec<OpTrace>,
}

/// Exploration by-products the fixpoint driver needs beyond the report:
/// the union of recovery-read observations (footprint extension), the
/// total skip count, and the canonical crash-free trace.
#[derive(Debug, Default)]
pub(crate) struct ExploreAux {
    pub recovery_reads: HashMap<u64, u64>,
    pub points_skipped: u64,
    pub clean_trace: Option<OpTrace>,
}

/// Runs one complete failure scenario steered by `decisions` and returns
/// its outcome plus the decision log (with alternative counts filled in),
/// ready for [`DecisionLog::backtrack`] or
/// [`DecisionLog::sibling_prefixes`].
///
/// When `snapshots` is provided, the scenario first probes the cache for
/// the longest snapshot matching its planned decision prefix; a hit skips
/// replaying that prefix's executions entirely (counted in
/// `executions_restored`). Every crash point the scenario does execute
/// through is checkpointed into the cache for later scenarios.
pub(crate) fn run_scenario(
    config: &Config,
    program: &dyn Program,
    decisions: DecisionLog,
    snapshots: CacheRef<'_>,
    prune: Option<&PruneOracle>,
) -> (ScenarioOutcome, DecisionLog) {
    let mut executions_restored = 0usize;
    // The restore clones checker state out of the cache under the shard
    // lock; `decisions` is consumed by whichever constructor runs, so it
    // rides in an Option the closures take from.
    let mut log = Some(decisions);
    let mut env = match snapshots {
        Some((cache, group)) => {
            let planned = log.as_ref().expect("log present").planned_prefix();
            cache
                .lookup(group, &planned, |snap| {
                    executions_restored = snap.executions_saved();
                    CheckerEnv::from_snapshot(config, log.take().expect("log present"), snap)
                })
                .unwrap_or_else(|| CheckerEnv::new(config, log.take().expect("log present")))
        }
        None => CheckerEnv::new(config, log.take().expect("log present")),
    };
    env.set_prune(prune.cloned());
    let mut executions_this_scenario = 0usize;
    let mut scenario_bug: Option<BugReport> = None;

    loop {
        executions_this_scenario += 1;
        let exec_index = env.current_execution();
        let result = with_quiet_panics(|| {
            catch_unwind(AssertUnwindSafe(|| {
                program.run(&env);
                env.end_of_execution_point();
            }))
        });
        match result {
            Ok(()) => break,
            Err(payload) => {
                if payload.is::<CrashSignal>() {
                    env.advance_execution();
                    if let Some((cache, group)) = snapshots {
                        let key = env.consumed_trace();
                        // The contains probe keeps the expensive
                        // `env.snapshot()` capture off the warm path; a
                        // concurrent insert between probe and insert is
                        // benign (duplicate inserts are no-ops).
                        if !cache.contains(group, &key) {
                            cache.insert(group, key, env.snapshot());
                        }
                    }
                    continue;
                }
                let (kind, message, location) = match payload.downcast::<AbortSignal>() {
                    Ok(sig) => {
                        let loc = sig
                            .location
                            .map(|l| format!("{}:{}:{}", l.file(), l.line(), l.column()));
                        (sig.kind, sig.message, loc)
                    }
                    Err(payload) => (
                        BugKind::GuestPanic,
                        panic_message(payload.as_ref()),
                        take_last_panic_location(),
                    ),
                };
                scenario_bug = Some(BugReport {
                    kind,
                    message,
                    location,
                    execution_index: exec_index,
                    crash_points: Vec::new(), // filled below
                    trace: Vec::new(),        // filled below
                    occurrences: 1,
                });
                break;
            }
        }
    }

    let record = env.finish();
    let mut bug = scenario_bug;
    if let Some(b) = &mut bug {
        b.crash_points = record.crash_points.clone();
        b.trace = record.decisions.trace();
    }
    let lints = lint_scenario(&record, bug.is_some(), config);
    let mut diagnostics = record.diagnostics;
    diagnostics.extend(lints);
    // Exactly one scenario per run never crashes and never hits a bug:
    // the all-continue one. Its first (and only) trace is the canonical
    // complete pre-failure trace, which the dead-flush pass consumes.
    let clean_trace = if record.crash_points.is_empty() && bug.is_none() {
        record.op_traces.first().cloned()
    } else {
        None
    };
    let op_traces = if config.collect_traces {
        record.op_traces
    } else {
        Vec::new()
    };
    let outcome = ScenarioOutcome {
        trace: record.decisions.trace(),
        executions_replayed: executions_this_scenario,
        executions_restored,
        divergence: record.decisions.divergence_exec_index(),
        load_choice_points: record.load_choice_points,
        max_rf_set: record.max_rf_set,
        failure_points: record.points_per_exec.first().copied().unwrap_or(0) as u64,
        races: record.races,
        diagnostics,
        bug,
        recovery_reads: record.recovery_reads,
        points_skipped: record.points_skipped,
        clean_trace,
        op_traces,
    };
    (outcome, record.decisions)
}

/// The Jaaru model checker.
///
/// # Example: finding a missing flush
///
/// ```
/// use jaaru::{Config, ModelChecker, PmEnv};
///
/// // A program that commits before persisting its data: recovery can see
/// // `committed == 1` while `data` still reads 0.
/// let buggy = |env: &dyn PmEnv| {
///     let root = env.root();
///     let data = root + 64; // different cache line
///     if env.load_u8(root) == 1 {
///         // Recovery path: the commit flag promises the data is there.
///         env.pm_assert(env.load_u64(data) == 42, "committed data lost");
///         return;
///     }
///     env.store_u64(data, 42);
///     // BUG: missing clflush(data) before the commit store.
///     env.store_u8(root, 1);
///     env.persist(root, 1);
/// };
///
/// let report = ModelChecker::new(Config::new()).check(&buggy);
/// assert!(!report.is_clean());
/// ```
#[derive(Debug)]
pub struct ModelChecker {
    config: Config,
    shared_cache: Option<SharedSnapshotCache>,
    cache_group: u64,
    abort: Option<Arc<AtomicBool>>,
}

impl ModelChecker {
    /// Creates a checker with the given configuration.
    pub fn new(config: Config) -> Self {
        ModelChecker {
            config,
            shared_cache: None,
            cache_group: 0,
            abort: None,
        }
    }

    /// Creates a checker with default configuration.
    pub fn with_defaults() -> Self {
        Self::new(Config::new())
    }

    /// The active configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Uses `cache` for crash-point snapshots instead of a private
    /// per-run cache, keying this checker's entries under `group`.
    ///
    /// A long-lived service shares one cache across jobs: keying the
    /// group by (program hash, config fingerprint) lets resubmissions of
    /// the same job reuse each other's snapshots while distinct jobs
    /// never collide (see [`Config::fingerprint`]). Ignored when
    /// [`Config::snapshots`] is off. Purely a performance setting —
    /// results are identical to a cold private cache.
    pub fn shared_cache(&mut self, cache: SharedSnapshotCache, group: u64) -> &mut Self {
        self.shared_cache = Some(cache);
        self.cache_group = group;
        self
    }

    /// Installs a cooperative abort flag: when `flag` becomes `true`,
    /// exploration winds down at the next scenario boundary and the
    /// report comes back with `truncated` set (like hitting a scenario
    /// budget). This is how a serving daemon enforces per-job deadlines
    /// and cancellation without killing worker threads mid-scenario.
    pub fn abort_flag(&mut self, flag: Arc<AtomicBool>) -> &mut Self {
        self.abort = Some(flag);
        self
    }

    fn aborted(&self) -> bool {
        self.abort
            .as_ref()
            .is_some_and(|a| a.load(Ordering::Relaxed))
    }

    /// Exhaustively model checks `program` and reports every distinct bug
    /// found, with statistics matching the paper's Figure 14 columns.
    ///
    /// With [`Config::jobs`] > 1 the scenario frontier is explored by a
    /// work-stealing thread pool; for non-truncated runs the report is
    /// byte-identical (per [`CheckReport::digest`]) to the sequential one.
    ///
    /// With [`Config::prune`] on, exploration runs as a fixpoint of
    /// slicing rounds: each round freezes the recovery read footprint
    /// observed so far, prunes injection points invisible to it, and
    /// extends the footprint with any new recovery reads; the final
    /// report carries cumulative work statistics across rounds and a
    /// [`SliceSummary`]. Pruning preserves verdicts, bug sets, and lint
    /// findings — only scenario/execution counts shrink.
    pub fn check(&self, program: &(dyn Program + Sync)) -> CheckReport {
        if !self.config.prune_value() {
            return self.check_round(program, None, 0).0;
        }
        self.check_pruned(program)
    }

    /// Runs the *static* persistence-slicing pass: a bounded sequential
    /// exploration with op tracing forced on, whose recorded traces feed
    /// [`jaaru_analysis::SliceReport::build`]. The result names the
    /// recovery read footprint, absorption facts, and the predicted
    /// crash-point equivalence classes — the explanation for what
    /// [`Config::prune`] skips dynamically. Advisory only: it never
    /// affects `check`'s exploration or verdicts.
    pub fn slice(&self, program: &(dyn Program + Sync)) -> jaaru_analysis::SliceReport {
        install_panic_hook();
        let mut config = self.config.clone();
        // `lints(true)` turns per-execution op tracing on; prune stays
        // off so the slice describes the unpruned scenario walk.
        config.lints(true).prune(false).jobs(1);
        config.collect_traces = true;

        let mut decisions = DecisionLog::new();
        let mut pre: Option<OpTrace> = None;
        let mut recoveries: Vec<OpTrace> = Vec::new();
        let mut scenarios = 0u64;
        loop {
            let (mut outcome, log) = run_scenario(&config, program, decisions, None, None);
            decisions = log;
            scenarios += 1;
            if let Some(trace) = outcome.clean_trace.take() {
                // The all-continue scenario's only trace is the complete
                // pre-failure execution.
                pre = Some(trace);
            }
            recoveries.extend(outcome.op_traces.drain(..).skip(1));
            if scenarios >= self.config.scenario_limit() || !decisions.backtrack() {
                break;
            }
        }
        let mut traces = vec![pre.unwrap_or_default()];
        traces.append(&mut recoveries);
        jaaru_analysis::SliceReport::build(&traces)
    }

    /// One full exploration pass with a frozen prune oracle (or none).
    /// `salt` perturbs the snapshot-cache key group: rounds with
    /// different footprints force different crash-decision alternative
    /// counts (1 vs 2) at the same positions, so their snapshots must
    /// never adopt each other's prefixes.
    fn check_round(
        &self,
        program: &(dyn Program + Sync),
        prune: Option<&PruneOracle>,
        salt: u64,
    ) -> (CheckReport, ExploreAux) {
        match self.config.effective_jobs() {
            0 | 1 => self.check_sequential(program, prune, salt),
            jobs => crate::parallel::check_parallel(
                &self.config,
                program,
                jobs,
                self.shared_cache.as_ref().map(|c| (c, self.cache_group)),
                self.abort.clone(),
                prune,
                salt,
            ),
        }
    }

    /// The slicing fixpoint. Round 1 runs with an empty footprint —
    /// only the representative points (first of each execution, end of
    /// execution) are expanded — and observes which lines recovery
    /// reads; each later round reruns with the extended footprint until
    /// no new line appears. Convergence is self-certifying: in the
    /// final round every explored recovery read only footprint lines,
    /// and by the representative-equivalence argument (DESIGN.md,
    /// "Static persistence slicing") every pruned point behaves
    /// identically to its representative, so nothing else was readable.
    fn check_pruned(&self, program: &(dyn Program + Sync)) -> CheckReport {
        // Each round must add at least one line, so this cap is only
        // reachable for pathologically value-dependent recovery code;
        // past it, trust nothing and run one unpruned final round.
        const MAX_ROUNDS: u64 = 32;
        let start = Instant::now();
        let mut footprint: HashSet<u64> = HashSet::new();
        let mut reads: HashMap<u64, u64> = HashMap::new();
        let mut rounds = 0u64;
        // Work carried over from earlier fixpoint rounds: discovery is
        // real work the pruned check performed, so the final report's
        // scenario/execution counts are cumulative (the pruning bench
        // compares exactly these against unpruned runs).
        let mut carry = CheckStats::default();
        loop {
            rounds += 1;
            let oracle = PruneOracle::new(footprint.clone());
            let (report, aux) =
                self.check_round(program, Some(&oracle), footprint_salt(&footprint));
            for (line, n) in &aux.recovery_reads {
                *reads.entry(*line).or_insert(0) += n;
            }
            let new_lines: Vec<u64> = aux
                .recovery_reads
                .keys()
                .filter(|l| !footprint.contains(l))
                .copied()
                .collect();
            let converged = new_lines.is_empty();
            footprint.extend(new_lines);
            // A truncated round (budget, bug cap, abort) ends the
            // fixpoint too: truncated runs carry no exhaustiveness
            // guarantee with or without pruning.
            if converged || report.truncated {
                return self.finalize_pruned(report, aux, footprint, reads, carry, rounds, start);
            }
            if rounds >= MAX_ROUNDS {
                let (report, aux) = self.check_round(program, None, 0);
                return self.finalize_pruned(
                    report,
                    aux,
                    footprint,
                    reads,
                    carry,
                    rounds + 1,
                    start,
                );
            }
            carry.scenarios += report.stats.scenarios;
            carry.executions += report.stats.executions;
            carry.executions_replayed += report.stats.executions_replayed;
            carry.executions_restored += report.stats.executions_restored;
        }
    }

    /// Folds the discovery rounds' work into the final round's report,
    /// runs the footprint-driven dead-flush pass over the crash-free
    /// trace, and attaches the slice summary.
    #[allow(clippy::too_many_arguments)]
    fn finalize_pruned(
        &self,
        mut report: CheckReport,
        aux: ExploreAux,
        footprint: HashSet<u64>,
        reads: HashMap<u64, u64>,
        carry: CheckStats,
        rounds: u64,
        start: Instant,
    ) -> CheckReport {
        let final_round_executions = report.stats.executions;
        let final_round_scenarios = report.stats.scenarios;
        report.stats.scenarios += carry.scenarios;
        report.stats.executions += carry.executions;
        report.stats.executions_replayed += carry.executions_replayed;
        report.stats.executions_restored += carry.executions_restored;
        report.stats.duration = start.elapsed();

        let mut writes_per_line: Vec<(u64, u64)> = Vec::new();
        if let Some(trace) = &aux.clean_trace {
            if self.config.lint_flush_redundancy_value() {
                let graph = jaaru_analysis::PersistGraph::build(trace);
                report
                    .diagnostics
                    .extend(jaaru_analysis::dead_flushes(&graph, &footprint));
            }
            let mut writes: HashMap<u64, u64> = HashMap::new();
            for op in trace.ops() {
                if matches!(op.kind, TraceOpKind::Store { .. }) {
                    if let Some((first, last)) = op.kind.line_range() {
                        for l in first..=last {
                            *writes.entry(l).or_insert(0) += 1;
                        }
                    }
                }
            }
            writes_per_line = writes.into_iter().collect();
            writes_per_line.sort_unstable();
        }
        let mut fp: Vec<u64> = footprint.into_iter().collect();
        fp.sort_unstable();
        let mut reads_per_line: Vec<(u64, u64)> = reads.into_iter().collect();
        reads_per_line.sort_unstable();
        report.slice = Some(SliceSummary {
            footprint: fp,
            reads_per_line,
            writes_per_line,
            points_skipped: aux.points_skipped,
            rounds,
            final_round_executions,
            final_round_scenarios,
        });
        report
    }

    /// Resolves the snapshot cache a run uses: the installed shared one,
    /// a fresh private one (created into `local`), or none.
    pub(crate) fn resolve_cache<'a>(
        config: &Config,
        shared: Option<(&'a SharedSnapshotCache, u64)>,
        local: &'a mut Option<SharedSnapshotCache>,
    ) -> CacheRef<'a> {
        if !config.snapshots_value() {
            return None;
        }
        match shared {
            Some(s) => Some(s),
            None => {
                let cache = local.insert(SharedSnapshotCache::new(config.snapshot_cap_value()));
                Some((cache, 0))
            }
        }
    }

    /// The single-threaded depth-first walk over the decision tree.
    fn check_sequential(
        &self,
        program: &dyn Program,
        prune: Option<&PruneOracle>,
        salt: u64,
    ) -> (CheckReport, ExploreAux) {
        install_panic_hook();
        let start = Instant::now();

        let mut decisions = DecisionLog::new();
        let mut acc = ReportAccumulator::new();
        let mut truncated = false;
        let mut local = None;
        let cache = Self::resolve_cache(
            &self.config,
            self.shared_cache.as_ref().map(|c| (c, self.cache_group)),
            &mut local,
        )
        .map(|(c, g)| (c, g ^ salt));
        // On a long-lived shared cache, report only this run's activity.
        let base = cache.map(|(c, _)| c.stats());

        loop {
            if self.aborted() {
                truncated = true;
                break;
            }
            let (outcome, log) = run_scenario(&self.config, program, decisions, cache, prune);
            decisions = log;
            let had_bug = outcome.bug.is_some();
            acc.add(outcome);

            if had_bug
                && (self.config.stop_on_first_bug_value()
                    || acc.distinct_bugs() >= self.config.bug_limit())
            {
                truncated = true;
                break;
            }
            if acc.scenarios() >= self.config.scenario_limit() {
                truncated = decisions.backtrack();
                break;
            }
            if !decisions.backtrack() {
                break;
            }
        }

        let snapshots = cache.map(|(c, _)| {
            c.stats()
                .since(&base.expect("base read when cache present"))
        });
        let aux = acc.take_aux();
        (
            acc.into_report(truncated, start.elapsed(), None, snapshots),
            aux,
        )
    }
}

/// FNV-1a over the sorted footprint lines: the per-round snapshot-cache
/// group salt. Deterministic in the footprint *set*, not its iteration
/// order.
fn footprint_salt(footprint: &HashSet<u64>) -> u64 {
    let mut lines: Vec<u64> = footprint.iter().copied().collect();
    lines.sort_unstable();
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for line in lines {
        for byte in line.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

impl ModelChecker {
    /// Replays a single recorded failure scenario — the `trace` of a
    /// [`BugReport`] — and returns its outcome. This is the paper's
    /// "strong witness" property made executable: a reported bug comes
    /// with the exact decision trace that reproduces it.
    ///
    /// # Panics
    ///
    /// Panics if the trace does not belong to this program (a decision
    /// index out of range).
    pub fn replay(&self, program: &dyn Program, trace: &[usize]) -> CheckReport {
        install_panic_hook();
        let start = Instant::now();
        let env = CheckerEnv::new(&self.config, DecisionLog::from_trace(trace));
        let mut stats = CheckStats {
            scenarios: 1,
            ..Default::default()
        };
        let mut bugs = Vec::new();
        loop {
            stats.executions += 1;
            stats.executions_replayed += 1;
            let exec_index = env.current_execution();
            let result = with_quiet_panics(|| {
                catch_unwind(AssertUnwindSafe(|| {
                    program.run(&env);
                    env.end_of_execution_point();
                }))
            });
            match result {
                Ok(()) => break,
                Err(payload) if payload.is::<CrashSignal>() => {
                    env.advance_execution();
                }
                Err(payload) => {
                    let (kind, message, location) = match payload.downcast::<AbortSignal>() {
                        Ok(sig) => {
                            let loc = sig
                                .location
                                .map(|l| format!("{}:{}:{}", l.file(), l.line(), l.column()));
                            (sig.kind, sig.message, loc)
                        }
                        Err(payload) => {
                            let message = panic_message(payload.as_ref());
                            if message.contains("trace does not match this program") {
                                // A checker-usage error, not a guest bug.
                                panic!("{message}");
                            }
                            (BugKind::GuestPanic, message, take_last_panic_location())
                        }
                    };
                    bugs.push(BugReport {
                        kind,
                        message,
                        location,
                        execution_index: exec_index,
                        crash_points: Vec::new(),
                        trace: trace.to_vec(),
                        occurrences: 1,
                    });
                    break;
                }
            }
        }
        let record = env.finish();
        let lints = lint_scenario(&record, !bugs.is_empty(), &self.config);
        let mut diagnostics = record.diagnostics;
        diagnostics.extend(lints);
        if let Some(bug) = bugs.first_mut() {
            bug.crash_points = record.crash_points;
        }
        stats.failure_points = record.points_per_exec.first().copied().unwrap_or(0) as u64;
        stats.duration = start.elapsed();
        CheckReport {
            bugs,
            races: record.races,
            diagnostics,
            stats,
            truncated: false,
            parallel: None,
            snapshots: None,
            slice: None,
        }
    }
}

/// Bugs are deduplicated by symptom location (or message when no location
/// is known) — the paper likewise groups failure injections leading to the
/// same symptom as one bug.
pub(crate) fn bug_dedup_key(bug: &BugReport) -> String {
    bug.location.clone().unwrap_or_else(|| bug.message.clone())
}

/// Convenience: model check `program` with default configuration.
///
/// ```
/// use jaaru::{check, PmEnv};
///
/// let report = check(&|env: &dyn PmEnv| {
///     let root = env.root();
///     env.store_u64(root, 9);
///     env.persist(root, 8);
/// });
/// assert!(report.is_clean());
/// ```
pub fn check(program: &(dyn Program + Sync)) -> CheckReport {
    ModelChecker::with_defaults().check(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PmEnv;

    fn small_config() -> Config {
        let mut c = Config::new();
        c.pool_size(8192);
        c
    }

    #[test]
    fn straight_line_correct_program_is_clean() {
        let report = ModelChecker::new(small_config()).check(&|env: &dyn PmEnv| {
            let root = env.root();
            env.store_u64(root, 5);
            env.persist(root, 8);
        });
        assert!(report.is_clean(), "{report}");
        assert!(
            report.stats.scenarios >= 2,
            "clean run + at least one crash scenario"
        );
    }

    #[test]
    fn commit_store_pattern_counts_match_figure_4() {
        // addChild/readChild from Figure 4: two cache lines, data then
        // commit pointer, each flushed. Three injection points; the paper
        // predicts 1, 2 and 2 post-failure executions respectively, i.e.
        // 1 (clean) + 5 (post-failure) executions and 6 scenarios.
        let program = |env: &dyn PmEnv| {
            let root = env.root(); // holds the child "pointer" (commit)
            let data = root + 64; // the child node, separate line
            if env.is_recovery() {
                // readChild
                if env.load_u64(root) != 0 {
                    let v = env.load_u64(data);
                    env.pm_assert(v == 42, "child data must be persistent once committed");
                }
                return;
            }
            // addChild
            env.store_u64(data, 42);
            env.clflush(data, 8); // injection point 0
            env.store_u64(root, data.to_bits());
            env.clflush(root, 8); // injection point 1
            env.sfence();
            // end-of-execution: injection point 2
        };
        let report = ModelChecker::new(small_config()).check(&program);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.stats.failure_points, 3);
        // Scenarios: the clean run, plus 1 post-failure execution for the
        // crash before clflush(data), 2 for the crash before clflush(root)
        // (commit pointer null / non-null), and 1 for the crash at the end
        // (both flushes landed, everything forced) — 5 total.
        assert_eq!(report.stats.scenarios, 5, "{report}");
    }

    #[test]
    fn missing_flush_before_commit_is_found() {
        let program = |env: &dyn PmEnv| {
            let root = env.root();
            let data = root + 64;
            if env.load_u64(root) != 0 {
                env.pm_assert(env.load_u64(data) == 42, "lost committed data");
                return;
            }
            env.store_u64(data, 42);
            // BUG: no clflush(data) here.
            env.store_u64(root, 1);
            env.clflush(root, 8);
            env.sfence();
        };
        let report = ModelChecker::new(small_config()).check(&program);
        assert_eq!(report.bugs.len(), 1, "{report}");
        assert_eq!(report.bugs[0].kind, BugKind::AssertionFailure);
        assert!(report.bugs[0].message.contains("lost committed data"));
        assert!(!report.races.is_empty(), "the racy data load is flagged");
    }

    #[test]
    fn bug_trace_reproduces_the_failure() {
        // The bug report's decision trace, replayed, must hit the same bug.
        let program = |env: &dyn PmEnv| {
            let root = env.root();
            let data = root + 64;
            if env.load_u64(root) != 0 {
                env.pm_assert(env.load_u64(data) == 42, "lost committed data");
                return;
            }
            env.store_u64(data, 42);
            env.store_u64(root, 1);
            env.clflush(root, 8);
            env.sfence();
        };
        let report = ModelChecker::new(small_config()).check(&program);
        let bug = &report.bugs[0];
        assert!(!bug.trace.is_empty());
        assert_eq!(bug.crash_points.len(), 1, "single failure scenario");
    }

    #[test]
    fn guest_panics_are_reported_as_bugs() {
        let program = |env: &dyn PmEnv| {
            let root = env.root();
            if env.is_recovery() {
                let v = env.load_u64(root);
                assert!(v == 0 || v == 7, "corrupt value {v}");
                return;
            }
            env.store_u64(root, 7);
            env.store_u64(root, 13); // unflushed torn state possible? No
            env.store_u64(root, 7);
            env.clflush(root, 8);
        };
        // v can be 0, 7 or 13 in recovery; 13 trips the guest assert.
        let report = ModelChecker::new(small_config()).check(&program);
        assert_eq!(report.bugs.len(), 1, "{report}");
        assert_eq!(report.bugs[0].kind, BugKind::GuestPanic);
        assert!(report.bugs[0].message.contains("corrupt value 13"));
    }

    #[test]
    fn stop_on_first_bug_truncates() {
        let program = |env: &dyn PmEnv| {
            let root = env.root();
            if env.is_recovery() {
                env.pm_assert(env.load_u8(root) != 1, "saw intermediate");
                return;
            }
            env.store_u8(root, 1);
            env.store_u8(root, 2);
            env.clflush(root, 1);
        };
        let mut config = small_config();
        config.stop_on_first_bug(true);
        let report = ModelChecker::new(config).check(&program);
        assert_eq!(report.bugs.len(), 1);
        assert!(report.truncated);
    }

    #[test]
    fn skip_unchanged_reduces_failure_points() {
        let program = |env: &dyn PmEnv| {
            let root = env.root();
            env.store_u64(root, 1);
            env.clflush(root, 8); // point: writes happened
            env.clflush(root, 8); // no writes since → skipped
            env.clflush(root, 8); // skipped
        };
        let report = ModelChecker::new(small_config()).check(&program);
        assert_eq!(
            report.stats.failure_points, 2,
            "first flush + end: {report}"
        );

        let mut config = small_config();
        config.skip_unchanged(false);
        let report = ModelChecker::new(config).check(&program);
        assert_eq!(report.stats.failure_points, 4, "3 flushes + end");
    }

    #[test]
    fn multi_failure_scenarios_explore_recovery_crashes() {
        // Recovery itself writes and flushes; with max_failures = 2 the
        // checker crashes inside recovery too.
        let program = |env: &dyn PmEnv| {
            let root = env.root();
            let generation = env.load_u64(root);
            env.store_u64(root, generation + 1);
            env.clflush(root, 8);
            env.sfence();
        };
        let mut one = small_config();
        one.max_failures(1);
        let single = ModelChecker::new(one).check(&program);

        let mut two = small_config();
        two.max_failures(2);
        let double = ModelChecker::new(two).check(&program);

        assert!(double.stats.scenarios > single.stats.scenarios);
        assert!(single.is_clean() && double.is_clean());
    }

    #[test]
    fn executions_leq_replayed_executions() {
        let program = |env: &dyn PmEnv| {
            let root = env.root();
            if env.load_u64(root) == 0 {
                env.store_u64(root, 1);
                env.clflush(root, 8);
                env.store_u64(root + 64, 2);
                env.clflush(root + 64, 8);
                env.sfence();
            } else {
                let _ = env.load_u64(root + 64);
            }
        };
        let report = ModelChecker::new(small_config()).check(&program);
        let logical = report.stats.executions_replayed + report.stats.executions_restored;
        assert!(report.stats.executions <= logical);
        assert!(report.stats.executions >= report.stats.scenarios);
    }

    #[test]
    fn snapshots_halve_guest_runs_on_deep_scenarios() {
        // The acceptance bar from the snapshot subsystem: with two
        // injected failures per scenario, restoring crash-point snapshots
        // must cut actual `Program::run` invocations by at least 2x while
        // leaving the digest byte-identical. (With a single failure each
        // post-failure scenario costs 2 runs replayed vs 1 restored, so
        // the ratio only approaches 2x; the second failure level is what
        // pushes it past.)
        use std::sync::atomic::{AtomicUsize, Ordering};
        let runs = AtomicUsize::new(0);
        let program = |env: &dyn PmEnv| {
            runs.fetch_add(1, Ordering::Relaxed);
            let root = env.root();
            let generation = env.load_u64(root);
            // Unflushed lines read back every execution: each read has
            // several candidate stores, so many scenarios share each
            // crash prefix and the restored snapshot is reused often.
            for i in 0..3u64 {
                let _ = env.load_u64(root + 8 + i * 64);
            }
            for i in 0..3u64 {
                env.store_u64(root + 8 + i * 64, generation + i);
            }
            env.store_u64(root, generation + 1);
            env.clflush(root, 8);
            env.sfence();
        };
        let mut config = small_config();
        config.max_failures(2);

        let on = ModelChecker::new(config.clone()).check(&program);
        let on_runs = runs.swap(0, Ordering::Relaxed);

        config.snapshots(false);
        let off = ModelChecker::new(config).check(&program);
        let off_runs = runs.load(Ordering::Relaxed);

        assert_eq!(
            on.digest(),
            off.digest(),
            "snapshots must not change results"
        );
        assert_eq!(
            on_runs, on.stats.executions_replayed as usize,
            "every guest run is counted as replayed"
        );
        assert_eq!(
            on.stats.executions_replayed + on.stats.executions_restored,
            off.stats.executions_replayed,
            "restored executions account for exactly the skipped replays"
        );
        assert!(
            off_runs >= 2 * on_runs,
            "expected >= 2x fewer guest runs with snapshots: {on_runs} on vs {off_runs} off"
        );
        let stats = on.snapshots.expect("snapshot stats are reported");
        assert!(stats.hits > 0, "{stats}");
        assert!(off.snapshots.is_none(), "disabled runs report no cache");
    }

    #[test]
    fn bugs_found_via_restored_prefixes_match_replayed_ones() {
        let program = |env: &dyn PmEnv| {
            let root = env.root();
            if env.load_u64(root) != 0 {
                env.pm_assert(env.load_u64(root + 64) == 42, "lost committed data");
                return;
            }
            env.store_u64(root + 64, 42);
            env.store_u64(root, 1);
            env.clflush(root, 8);
            env.sfence();
        };
        let on = ModelChecker::new(small_config()).check(&program);
        let mut config = small_config();
        config.snapshots(false);
        let off = ModelChecker::new(config).check(&program);
        assert_eq!(on.digest(), off.digest());
        assert_eq!(on.bugs.len(), 1);
        assert_eq!(on.bugs[0].trace, off.bugs[0].trace);
        assert_eq!(on.bugs[0].crash_points, off.bugs[0].crash_points);
    }

    #[test]
    fn max_scenarios_truncates() {
        let program = |env: &dyn PmEnv| {
            let root = env.root();
            for i in 0..8 {
                env.store_u64(root + i * 8, i);
                env.clflush(root + i * 8, 8);
            }
            env.sfence();
        };
        let mut config = small_config();
        config.max_scenarios(3);
        let report = ModelChecker::new(config).check(&program);
        assert_eq!(report.stats.scenarios, 3);
        assert!(report.truncated);
    }

    #[test]
    fn torn_multibyte_write_is_observable_without_flush() {
        // A two-byte value written with two one-byte stores straddling a
        // flush boundary can tear; the checker must surface the torn state.
        let program = |env: &dyn PmEnv| {
            let root = env.root();
            if env.is_recovery() {
                let lo = env.load_u8(root);
                let hi = env.load_u8(root + 1);
                env.pm_assert(!(lo == 1 && hi == 0), "torn write observed");
                return;
            }
            env.store_u8(root, 1);
            env.store_u8(root + 1, 1);
            env.clflush(root, 2);
            env.sfence();
        };
        let report = ModelChecker::new(small_config()).check(&program);
        assert!(!report.is_clean(), "torn state must be explored");
    }

    #[test]
    fn atomic_multibyte_store_never_tears() {
        // The same value written with one 2-byte store cannot tear.
        let program = |env: &dyn PmEnv| {
            let root = env.root();
            if env.is_recovery() {
                let lo = env.load_u8(root);
                let hi = env.load_u8(root + 1);
                // Both bytes are 0 (initial) or 1 (stored); a mismatch is a tear.
                env.pm_assert(lo == hi, "torn");
                return;
            }
            env.store_u16(root, 0x0101);
            env.clflush(root, 2);
            env.sfence();
        };
        let report = ModelChecker::new(small_config()).check(&program);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn same_symptom_from_multiple_scenarios_dedups() {
        let program = |env: &dyn PmEnv| {
            let root = env.root();
            if env.is_recovery() {
                env.pm_assert(env.load_u8(root) == 0, "nonzero");
                return;
            }
            for i in 0..4 {
                env.store_u8(root, i + 1);
                env.clflush(root, 1);
            }
            env.sfence();
        };
        let report = ModelChecker::new(small_config()).check(&program);
        assert_eq!(report.bugs.len(), 1, "one distinct symptom: {report}");
        assert!(report.bugs[0].occurrences > 1);
    }

    #[test]
    fn bug_traces_replay_to_the_same_bug() {
        let program = |env: &dyn PmEnv| {
            let root = env.root();
            let data = root + 64;
            if env.load_u64(root) != 0 {
                env.pm_assert(env.load_u64(data) == 42, "lost committed data");
                return;
            }
            env.store_u64(data, 42);
            env.store_u64(root, 1);
            env.clflush(root, 8);
            env.sfence();
        };
        let checker = ModelChecker::new(small_config());
        let report = checker.check(&program);
        let bug = &report.bugs[0];
        let replayed = checker.replay(&program, &bug.trace);
        assert_eq!(replayed.bugs.len(), 1, "{replayed}");
        assert_eq!(replayed.bugs[0].kind, bug.kind);
        assert_eq!(replayed.bugs[0].message, bug.message);
        assert_eq!(replayed.bugs[0].crash_points, bug.crash_points);
        assert_eq!(replayed.stats.executions, 2, "pre-failure + recovery");
    }

    #[test]
    fn clean_traces_replay_cleanly() {
        let program = |env: &dyn PmEnv| {
            let root = env.root();
            env.store_u64(root, 5);
            env.persist(root, 8);
        };
        let checker = ModelChecker::new(small_config());
        // The empty trace is the all-defaults scenario: the clean run.
        let replayed = checker.replay(&program, &[]);
        assert!(replayed.is_clean());
    }

    #[test]
    #[should_panic(expected = "trace does not match")]
    fn foreign_traces_are_rejected() {
        let program = |env: &dyn PmEnv| {
            let root = env.root();
            env.store_u64(root, 5);
            env.persist(root, 8);
        };
        let checker = ModelChecker::new(small_config());
        let _ = checker.replay(&program, &[7]);
    }

    #[test]
    fn redundant_flushes_are_flagged_when_enabled() {
        use jaaru_analysis::DiagnosticKind;
        let program = |env: &dyn PmEnv| {
            let root = env.root();
            env.store_u64(root, 1);
            env.clflush(root, 8);
            env.clflush(root, 8); // nothing dirty: wasted clflush
            env.clflushopt(root, 8); // wasted clflushopt
            env.sfence(); // orders the clflushopt: not redundant
            env.sfence(); // nothing to order: wasted fence
        };
        let mut config = small_config();
        config.flag_perf_issues(true);
        let report = ModelChecker::new(config).check(&program);
        assert!(report.is_clean(), "perf issues are not bugs: {report}");
        assert!(!report.has_errors(), "perf warnings are not errors");
        let kinds: Vec<DiagnosticKind> = report.diagnostics.iter().map(|d| d.kind).collect();
        assert!(kinds.contains(&DiagnosticKind::RedundantFlush), "{kinds:?}");
        assert!(
            kinds.contains(&DiagnosticKind::RedundantFlushOpt),
            "{kinds:?}"
        );
        assert!(kinds.contains(&DiagnosticKind::RedundantFence), "{kinds:?}");
        for d in &report.diagnostics {
            assert!(d.site.contains("explorer.rs"), "{d}");
        }
    }

    #[test]
    fn perf_flagging_is_off_by_default_and_changes_nothing() {
        let program = |env: &dyn PmEnv| {
            let root = env.root();
            env.store_u64(root, 1);
            env.clflush(root, 8);
            env.clflush(root, 8);
        };
        let off = ModelChecker::new(small_config()).check(&program);
        assert!(off.diagnostics.is_empty());
        let mut config = small_config();
        config.flag_perf_issues(true);
        let on = ModelChecker::new(config).check(&program);
        assert_eq!(off.stats.scenarios, on.stats.scenarios, "diagnostics only");
        assert!(!on.diagnostics.is_empty());
    }

    #[test]
    fn necessary_flushes_are_not_flagged() {
        let program = |env: &dyn PmEnv| {
            let root = env.root();
            env.store_u64(root, 1);
            env.clflush(root, 8); // dirty: necessary
            env.store_u64(root + 64, 2);
            env.clflushopt(root + 64, 8); // dirty: necessary
            env.sfence(); // orders the clflushopt: necessary
        };
        let mut config = small_config();
        config.flag_perf_issues(true);
        let report = ModelChecker::new(config).check(&program);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn lints_localize_a_missing_flush_to_the_store() {
        use jaaru_analysis::DiagnosticKind;
        let program = |env: &dyn PmEnv| {
            let root = env.root();
            let data = root + 64;
            if env.load_u64(root) != 0 {
                env.pm_assert(env.load_u64(data) == 42, "lost committed data");
                return;
            }
            env.store_u64(data, 42); // BUG: never flushed before the commit
            env.store_u64(root, 1);
            env.clflush(root, 8);
            env.sfence();
        };
        let mut config = small_config();
        config.lints(true);
        let report = ModelChecker::new(config).check(&program);
        assert!(!report.is_clean(), "the bug is still found: {report}");
        assert!(report.has_errors(), "{report}");
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.kind == DiagnosticKind::MissingFlush)
            .expect("missing-flush diagnostic");
        assert!(d.site.contains("explorer.rs"), "{d}");
        assert!(d.message.contains("commit store"), "{d}");
    }

    #[test]
    fn lints_are_quiet_on_the_fixed_program() {
        let program = |env: &dyn PmEnv| {
            let root = env.root();
            let data = root + 64;
            if env.load_u64(root) != 0 {
                env.pm_assert(env.load_u64(data) == 42, "lost committed data");
                return;
            }
            env.store_u64(data, 42);
            env.persist(data, 8); // the fix
            env.store_u64(root, 1);
            env.persist(root, 8);
        };
        let mut config = small_config();
        config.lints(true);
        let report = ModelChecker::new(config).check(&program);
        assert!(report.is_clean(), "{report}");
        assert!(!report.has_errors(), "{:?}", report.diagnostics);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn lints_off_by_default_and_do_not_change_exploration() {
        let program = |env: &dyn PmEnv| {
            let root = env.root();
            env.store_u64(root, 5);
            env.persist(root, 8);
        };
        let off = ModelChecker::new(small_config()).check(&program);
        assert!(off.diagnostics.is_empty());
        let mut config = small_config();
        config.lints(true);
        let on = ModelChecker::new(config).check(&program);
        assert_eq!(off.stats.scenarios, on.stats.scenarios, "analysis only");
        assert_eq!(off.digest(), on.digest(), "clean program: same digest");
    }

    #[test]
    fn buffered_stores_are_definitely_lost_under_on_fence_eviction() {
        // Under the OnFence policy a store still sitting in the store
        // buffer at the failure is *definitely* lost (unlike unflushed
        // cache content, which is maybe-persistent). Recovery must read
        // only the initial value.
        use std::collections::BTreeSet;
        use std::sync::Mutex;
        let observed = Mutex::new(BTreeSet::new());
        let program = |env: &dyn PmEnv| {
            let root = env.root();
            if env.is_recovery() {
                observed.lock().unwrap().insert(env.load_u64(root));
                return;
            }
            env.store_u64(root, 7); // buffered, never fenced
            env.clflush(root + 64, 8); // unrelated flush = injection point
        };
        let mut config = small_config();
        config
            .eviction(jaaru_tso::EvictionPolicy::OnFence)
            .skip_unchanged(false);
        let report = ModelChecker::new(config).check(&program);
        assert!(report.is_clean(), "{report}");
        assert_eq!(
            *observed.lock().unwrap(),
            BTreeSet::from([0]),
            "buffered store must vanish"
        );

        // The same program under Eager eviction explores both outcomes.
        observed.lock().unwrap().clear();
        let mut config = small_config();
        config.skip_unchanged(false);
        let report = ModelChecker::new(config).check(&program);
        assert!(report.is_clean(), "{report}");
        assert_eq!(
            *observed.lock().unwrap(),
            BTreeSet::from([0, 7]),
            "cached store is maybe-persistent"
        );
    }

    #[test]
    fn guest_threads_have_independent_flush_buffers() {
        // A child thread's clflushopt is not ordered by the main thread's
        // sfence (per-thread flush buffers, Figure 8): the line may stay
        // unconstrained, so recovery can read 0 or 1.
        use std::collections::BTreeSet;
        use std::sync::Mutex;
        let observed = Mutex::new(BTreeSet::new());
        let program = |env: &dyn PmEnv| {
            let root = env.root();
            if env.is_recovery() {
                observed.lock().unwrap().insert(env.load_u64(root));
                return;
            }
            env.store_u64(root, 1);
            env.spawn(&mut |t| t.clflushopt(root, 8));
            env.sfence(); // main thread: does NOT order the child's flush
            env.store_u64(root + 64, 2);
            env.persist(root + 64, 8);
        };
        let report = ModelChecker::new(small_config()).check(&program);
        assert!(report.is_clean(), "{report}");
        assert_eq!(
            *observed.lock().unwrap(),
            BTreeSet::from([0, 1]),
            "{report}"
        );

        // With the fence in the *child* thread the flush is ordered and
        // the value is pinned once the later commit is visible.
        let pinned = Mutex::new(BTreeSet::new());
        let program = |env: &dyn PmEnv| {
            let root = env.root();
            if env.is_recovery() {
                if env.load_u64(root + 64) == 2 {
                    pinned.lock().unwrap().insert(env.load_u64(root));
                }
                return;
            }
            env.store_u64(root, 1);
            env.spawn(&mut |t| {
                t.clflushopt(root, 8);
                t.sfence();
            });
            env.store_u64(root + 64, 2);
            env.persist(root + 64, 8);
        };
        let report = ModelChecker::new(small_config()).check(&program);
        assert!(report.is_clean(), "{report}");
        assert_eq!(
            *pinned.lock().unwrap(),
            BTreeSet::from([1]),
            "fenced flush pins the store"
        );
    }

    /// Commit-store pattern plus a tail of scratch lines recovery never
    /// reads: every scratch flush is an injection point the slice can
    /// prune.
    fn scratch_tail_program(env: &dyn PmEnv, bug: bool) {
        let root = env.root();
        let data = root + 64;
        if env.is_recovery() {
            if env.load_u64(root) != 0 {
                env.pm_assert(env.load_u64(data) == 42, "lost committed data");
            }
            return;
        }
        env.store_u64(data, 42);
        if !bug {
            env.clflush(data, 8);
        }
        env.store_u64(root, 1);
        env.clflush(root, 8);
        env.sfence();
        for i in 2..10u64 {
            env.store_u64(root + i * 64, i);
            env.clflush(root + i * 64, 8);
        }
        env.sfence();
    }

    fn bug_keys(report: &CheckReport) -> Vec<(String, String, Option<String>)> {
        let mut keys: Vec<_> = report
            .bugs
            .iter()
            .map(|b| {
                (
                    format!("{:?}", b.kind),
                    b.message.clone(),
                    b.location.clone(),
                )
            })
            .collect();
        keys.sort();
        keys
    }

    #[test]
    fn pruning_preserves_verdicts_and_skips_points() {
        let program = |env: &dyn PmEnv| scratch_tail_program(env, false);
        let off = ModelChecker::new(small_config()).check(&program);
        let mut config = small_config();
        config.prune(true);
        let on = ModelChecker::new(config).check(&program);

        assert!(off.is_clean() && on.is_clean(), "{on}");
        assert_eq!(bug_keys(&off), bug_keys(&on));
        assert_eq!(off.lint_digest(), on.lint_digest());
        assert!(off.slice.is_none(), "slice only attached when pruning");
        let slice = on.slice.as_ref().expect("slice summary attached");
        assert!(slice.points_skipped > 0, "{on}");
        assert!(slice.rounds >= 2, "discovery + converged round");
        assert!(!slice.footprint.is_empty(), "recovery reads root and data");
        assert!(
            on.stats.executions < off.stats.executions,
            "pruning must pay for its discovery rounds: {} on vs {} off",
            on.stats.executions,
            off.stats.executions
        );
        assert_eq!(
            on.stats.failure_points, off.stats.failure_points,
            "skipped points are still counted as failure points"
        );
    }

    #[test]
    fn pruning_finds_the_same_bugs() {
        let program = |env: &dyn PmEnv| scratch_tail_program(env, true);
        let off = ModelChecker::new(small_config()).check(&program);
        let mut config = small_config();
        config.prune(true);
        let on = ModelChecker::new(config).check(&program);
        assert!(!off.is_clean() && !on.is_clean());
        assert_eq!(bug_keys(&off), bug_keys(&on));
    }

    #[test]
    fn pruned_bug_traces_replay_to_the_same_bug() {
        let program = |env: &dyn PmEnv| scratch_tail_program(env, true);
        let mut config = small_config();
        config.prune(true);
        let checker = ModelChecker::new(config);
        let report = checker.check(&program);
        let bug = &report.bugs[0];
        // Replay never prunes, but a pruned trace's forced-continue
        // decisions are position-aligned with unpruned ones, so the
        // trace replays verbatim.
        let replayed = checker.replay(&program, &bug.trace);
        assert_eq!(replayed.bugs.len(), 1, "{replayed}");
        assert_eq!(replayed.bugs[0].kind, bug.kind);
        assert_eq!(replayed.bugs[0].message, bug.message);
        assert_eq!(replayed.bugs[0].crash_points, bug.crash_points);
    }

    #[test]
    fn pruning_matches_across_worker_counts() {
        let program = |env: &dyn PmEnv| scratch_tail_program(env, true);
        let mut config = small_config();
        config.prune(true);
        let sequential = ModelChecker::new(config.clone()).check(&program);
        for jobs in [2usize, 4] {
            let mut config = config.clone();
            config.jobs(jobs);
            let parallel = ModelChecker::new(config).check(&program);
            assert_eq!(sequential.digest(), parallel.digest(), "jobs={jobs}");
        }
    }

    #[test]
    fn pruning_with_lints_preserves_findings_and_flags_dead_flushes() {
        use jaaru_analysis::DiagnosticKind;
        let program = |env: &dyn PmEnv| scratch_tail_program(env, true);
        let mut config = small_config();
        config.lints(true).lint_flush_redundancy(true);
        let off = ModelChecker::new(config.clone()).check(&program);
        config.prune(true);
        let on = ModelChecker::new(config).check(&program);

        assert_eq!(bug_keys(&off), bug_keys(&on));
        assert_eq!(off.lint_digest(), on.lint_digest());
        // The scratch-tail flushes persist lines recovery never reads:
        // the footprint-driven pass flags them, pruned runs only.
        assert!(
            on.diagnostics
                .iter()
                .any(|d| d.kind == DiagnosticKind::DeadFlush),
            "{:?}",
            on.diagnostics
        );
        assert!(
            !off.diagnostics
                .iter()
                .any(|d| d.kind == DiagnosticKind::DeadFlush),
            "dead flushes need a footprint"
        );
    }

    #[test]
    fn static_slice_agrees_with_dynamic_pruning() {
        let program = |env: &dyn PmEnv| scratch_tail_program(env, false);
        let checker = ModelChecker::new(small_config());
        let slice = checker.slice(&program);
        assert!(slice.predicted_skipped > 0, "{slice:?}");
        assert!(slice.total_points > slice.predicted_skipped);

        let mut config = small_config();
        config.prune(true);
        let on = ModelChecker::new(config).check(&program);
        let dynamic = on.slice.as_ref().expect("slice summary");
        assert_eq!(
            slice.footprint, dynamic.footprint,
            "static and dynamic footprints agree on a deterministic program"
        );
    }

    #[test]
    fn pruning_a_program_with_no_recovery_reads_converges_immediately() {
        let program = |env: &dyn PmEnv| {
            let root = env.root();
            env.store_u64(root, 5);
            env.persist(root, 8);
            env.store_u64(root + 64, 6);
            env.persist(root + 64, 8);
        };
        let off = ModelChecker::new(small_config()).check(&program);
        let mut config = small_config();
        config.prune(true);
        let on = ModelChecker::new(config).check(&program);
        assert!(on.is_clean() && off.is_clean());
        let slice = on.slice.as_ref().expect("slice");
        assert_eq!(slice.rounds, 1, "empty footprint is already a fixpoint");
        assert!(slice.footprint.is_empty());
        assert!(on.stats.scenarios < off.stats.scenarios, "{on}");
    }

    #[test]
    fn checksum_recovery_is_checked_without_flushes() {
        // Checksum-based recovery (paper §4): data + checksum written with
        // no flushes at all; recovery validates the checksum and only
        // trusts data when it matches. Correct code is clean even though
        // every load is maximally nondeterministic.
        let program = |env: &dyn PmEnv| {
            let root = env.root();
            if env.is_recovery() {
                let a = env.load_u64(root + 8);
                let b = env.load_u64(root + 16);
                let sum = env.load_u64(root + 24);
                if sum == a ^ b ^ 0xabcd && sum != 0 {
                    env.pm_assert(a == 11 && b == 22, "checksum matched but data stale");
                }
                return;
            }
            env.store_u64(root + 8, 11);
            env.store_u64(root + 16, 22);
            env.store_u64(root + 24, 11 ^ 22 ^ 0xabcd);
            env.clflush(root, 64);
            env.sfence();
        };
        let report = ModelChecker::new(small_config()).check(&program);
        assert!(report.is_clean(), "{report}");
    }
}
