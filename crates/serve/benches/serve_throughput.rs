//! Service throughput: one daemon instance driven through batch mode
//! with a cold sweep of distinct jobs and a 50%-duplicate sweep,
//! measuring jobs/sec and the shared result-cache hit rate, plus a
//! direct cold-vs-cached resubmission timing on a heavier job.
//!
//! Emits a machine-readable summary to `BENCH_serve.json` in the
//! working directory and asserts the subsystem's acceptance bar: a
//! cached resubmission replies >= 5x faster than the cold run.

use std::fmt::Write as _;
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use jaaru_serve::json::{parse, Value};
use jaaru_serve::{daemon, Daemon, ServeOptions};

const KEYS: usize = 4;
const ROWS: [usize; 8] = [1, 2, 3, 5, 8, 10, 12, 14];
/// The heavier job used for the resubmission timing (default bug keys).
const RESUBMIT: &str = r#"{"kind":"bug","suite":"recipe","row":10}"#;

fn new_daemon() -> Arc<Daemon> {
    Arc::new(Daemon::new(ServeOptions::default()))
}

fn job_line(row: usize) -> String {
    format!(r#"{{"kind":"bug","suite":"recipe","row":{row},"keys":{KEYS}}}"#)
}

/// Runs request lines through batch mode, returning wall-clock time and
/// the parsed reply envelopes.
fn run(d: &Arc<Daemon>, input: &str) -> (Duration, Vec<Value>) {
    let mut out = Vec::new();
    let start = Instant::now();
    daemon::run_batch(d, input, &mut out).expect("batch mode runs");
    let elapsed = start.elapsed();
    let replies = String::from_utf8(out)
        .expect("utf-8 replies")
        .lines()
        .map(|line| parse(line).expect("reply line is valid JSON"))
        .collect();
    (elapsed, replies)
}

/// Reads a result-cache counter out of the trailing `stats` reply.
fn cache_counter(replies: &[Value], key: &str) -> u64 {
    replies
        .last()
        .and_then(|stats| stats.get("metrics"))
        .and_then(|m| m.get("cache"))
        .and_then(|c| c.get(key))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("stats reply missing cache.{key}"))
}

fn main() {
    let mut sweep = String::new();
    for row in ROWS {
        let _ = writeln!(sweep, "{}", job_line(row));
    }

    // Cold sweep: every job distinct, every result a miss.
    let cold_daemon = new_daemon();
    let (cold_time, cold_replies) = run(&cold_daemon, &format!("{sweep}{{\"kind\":\"stats\"}}\n"));
    assert_eq!(cache_counter(&cold_replies, "result_hits"), 0);
    assert_eq!(
        cache_counter(&cold_replies, "result_misses"),
        ROWS.len() as u64
    );
    let cold_jps = ROWS.len() as f64 / cold_time.as_secs_f64();

    // 50% duplicate sweep: the same rows resubmitted once each; the
    // second half is served from the shared result cache.
    let dup_daemon = new_daemon();
    let (dup_time, dup_replies) = run(
        &dup_daemon,
        &format!("{sweep}{sweep}{{\"kind\":\"stats\"}}\n"),
    );
    let dup_hits = cache_counter(&dup_replies, "result_hits");
    let dup_misses = cache_counter(&dup_replies, "result_misses");
    assert_eq!(
        dup_hits,
        ROWS.len() as u64,
        "duplicates must hit the result cache"
    );
    assert_eq!(dup_misses, ROWS.len() as u64);
    let dup_jobs = 2 * ROWS.len();
    let dup_jps = dup_jobs as f64 / dup_time.as_secs_f64();
    let hit_rate = dup_hits as f64 / (dup_hits + dup_misses) as f64;

    // Direct resubmission timing: one heavier job cold, then cached.
    // Batch mode closes the daemon after one pass, so this drives the
    // admission API directly against a persistent executor.
    let resubmit_daemon = new_daemon();
    let executor = {
        let d = Arc::clone(&resubmit_daemon);
        thread::spawn(move || d.run_executor())
    };
    let (tx, rx) = channel();
    let timed_submit = || {
        let start = Instant::now();
        resubmit_daemon.submit_line(RESUBMIT, &tx);
        let reply = vec![parse(&rx.recv().expect("executor replies")).expect("valid reply")];
        (start.elapsed(), reply)
    };
    let (cold_secs, first) = timed_submit();
    let (cached_secs, second) = timed_submit();
    resubmit_daemon.close();
    executor.join().expect("executor exits cleanly");
    assert_eq!(first[0].get("cached").and_then(Value::as_bool), Some(false));
    assert_eq!(second[0].get("cached").and_then(Value::as_bool), Some(true));
    assert_eq!(
        first[0].get("artifact"),
        second[0].get("artifact"),
        "cached reply bytes must match the cold run"
    );
    let speedup = cold_secs.as_secs_f64() / cached_secs.as_secs_f64();

    println!();
    println!(
        "cold sweep: {} jobs in {:.3}s ({cold_jps:.1} jobs/sec)",
        ROWS.len(),
        cold_time.as_secs_f64()
    );
    println!(
        "50% duplicate sweep: {dup_jobs} jobs in {:.3}s ({dup_jps:.1} jobs/sec, hit rate {hit_rate:.2})",
        dup_time.as_secs_f64()
    );
    println!(
        "resubmission: cold {:.4}s vs cached {:.6}s ({speedup:.1}x)",
        cold_secs.as_secs_f64(),
        cached_secs.as_secs_f64()
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"serve_throughput\",");
    let _ = writeln!(json, "  \"keys\": {KEYS},");
    let _ = writeln!(
        json,
        "  \"cold\": {{\"jobs\": {}, \"secs\": {:.6}, \"jobs_per_sec\": {:.2}}},",
        ROWS.len(),
        cold_time.as_secs_f64(),
        cold_jps
    );
    let _ = writeln!(
        json,
        "  \"duplicate_sweep\": {{\"jobs\": {dup_jobs}, \"secs\": {:.6}, \
         \"jobs_per_sec\": {:.2}, \"result_hits\": {dup_hits}, \
         \"result_misses\": {dup_misses}, \"hit_rate\": {hit_rate:.4}}},",
        dup_time.as_secs_f64(),
        dup_jps
    );
    let _ = writeln!(
        json,
        "  \"resubmission\": {{\"cold_secs\": {:.6}, \"cached_secs\": {:.6}, \
         \"speedup\": {:.2}}}",
        cold_secs.as_secs_f64(),
        cached_secs.as_secs_f64(),
        speedup
    );
    json.push_str("}\n");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");

    assert!(
        speedup >= 5.0,
        "acceptance: cached resubmission must be >= 5x faster than cold \
         (cold {:.6}s vs cached {:.6}s)",
        cold_secs.as_secs_f64(),
        cached_secs.as_secs_f64()
    );
}
