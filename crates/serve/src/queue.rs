//! Admission control: a bounded blocking job queue and the cancellation
//! registry.
//!
//! The queue applies backpressure by *rejecting* rather than blocking
//! the submitter — a full queue turns the request into an immediate
//! `rejected` reply, so one slow client cannot wedge the daemon's read
//! loops. The executor side blocks on [`BoundedQueue::pop`] until work
//! or shutdown arrives.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Default queue capacity (`--queue-cap` overrides).
pub const DEFAULT_QUEUE_CAP: usize = 64;

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer single-consumer queue. `push` never blocks;
/// `pop` blocks until an item or close.
pub struct BoundedQueue<T> {
    cap: usize,
    state: Mutex<State<T>>,
    ready: Condvar,
}

impl<T> BoundedQueue<T> {
    pub fn new(cap: usize) -> BoundedQueue<T> {
        BoundedQueue {
            cap: cap.max(1),
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues `item`, or hands it back when the queue is full or
    /// closed (the caller turns that into a `rejected` reply).
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().unwrap();
        if state.closed || state.items.len() >= self.cap {
            return Err(item);
        }
        state.items.push_back(item);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available; `None` once the queue is
    /// closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap();
        }
    }

    /// Stops admission and wakes the consumer; queued items still drain.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Live cancellation flags by job id. A job registers on admission and
/// deregisters after its reply; `cancel` flips the flag whether the job
/// is still queued (the executor skips it) or mid-run (the checker's
/// abort flag stops it at the next scenario boundary).
#[derive(Default)]
pub struct CancelRegistry {
    flags: Mutex<HashMap<String, Arc<AtomicBool>>>,
}

impl CancelRegistry {
    pub fn new() -> CancelRegistry {
        CancelRegistry::default()
    }

    /// Registers `id` and returns its flag. Re-registering an id joins
    /// the existing flag, so `cancel` covers duplicate submissions too.
    pub fn register(&self, id: &str) -> Arc<AtomicBool> {
        self.flags
            .lock()
            .unwrap()
            .entry(id.to_string())
            .or_default()
            .clone()
    }

    /// Sets the flag for `id`; false when no such job is live.
    pub fn cancel(&self, id: &str) -> bool {
        match self.flags.lock().unwrap().get(id) {
            Some(flag) => {
                flag.store(true, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Drops the flag once the job has replied.
    pub fn deregister(&self, id: &str) {
        self.flags.lock().unwrap().remove(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn rejects_when_full_and_drains_in_order() {
        let q = BoundedQueue::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.push(3), Err(3), "backpressure hands the item back");
        assert_eq!(q.pop(), Some(1));
        assert!(q.push(3).is_ok(), "space freed");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_wakes_consumer_and_drains_remainder() {
        let q = Arc::new(BoundedQueue::new(4));
        q.push(7).unwrap();
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(item) = q.pop() {
                    seen.push(item);
                }
                seen
            })
        };
        thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(q.push(8), Err(8), "closed queue admits nothing");
        assert_eq!(consumer.join().unwrap(), vec![7]);
    }

    #[test]
    fn cancel_registry_flags_live_jobs_only() {
        let reg = CancelRegistry::new();
        let flag = reg.register("job-1");
        assert!(!flag.load(Ordering::Relaxed));
        assert!(reg.cancel("job-1"));
        assert!(flag.load(Ordering::Relaxed));
        assert!(!reg.cancel("job-2"), "unknown id");
        reg.deregister("job-1");
        assert!(!reg.cancel("job-1"), "deregistered id");
    }

    #[test]
    fn duplicate_ids_share_one_flag() {
        let reg = CancelRegistry::new();
        let a = reg.register("dup");
        let b = reg.register("dup");
        reg.cancel("dup");
        assert!(a.load(Ordering::Relaxed) && b.load(Ordering::Relaxed));
    }
}
