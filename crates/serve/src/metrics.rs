//! Service observability: per-status job counters, queue depth, result
//! cache hit rate, and p50/p99 latency, rendered as one deterministic
//! JSON object (sorted keys, integer milliseconds) that rides inside
//! every reply envelope and answers `stats` requests.

use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use jaaru_bench::timing::percentile;
use jaaru_snapshot::SnapshotStats;

/// Terminal status of a job, as reported in the reply envelope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Ran to completion; the verdict is clean.
    Ok,
    /// Ran to completion; bugs or error-severity diagnostics found.
    Violation,
    /// The job itself failed (bad spec, unknown benchmark, panic).
    Failed,
    /// Cancelled before or during execution.
    Cancelled,
    /// The per-job deadline elapsed mid-run.
    Deadline,
    /// Refused at admission (queue full or unparseable line).
    Rejected,
}

impl JobStatus {
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Ok => "ok",
            JobStatus::Violation => "violation",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Deadline => "deadline",
            JobStatus::Rejected => "rejected",
        }
    }
}

#[derive(Default)]
struct Inner {
    admitted: u64,
    rejected: u64,
    ok: u64,
    violation: u64,
    failed: u64,
    cancelled: u64,
    deadline: u64,
    retries: u64,
    result_hits: u64,
    result_misses: u64,
    queue_depth: u64,
    queue_peak: u64,
    latencies: Vec<Duration>,
}

/// Aggregate service metrics, shared between the admission side and the
/// executor. All updates take one short mutex; rendering snapshots the
/// state at a single point in time.
#[derive(Default)]
pub struct Metrics {
    inner: Mutex<Inner>,
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics::default()
    }

    // Counters stay meaningful even if a panic ever unwinds through an
    // update — recover the guard rather than cascading the poison into
    // every later reply.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// A job entered the queue.
    pub fn admitted(&self) {
        let mut m = self.lock();
        m.admitted += 1;
        m.queue_depth += 1;
        m.queue_peak = m.queue_peak.max(m.queue_depth);
    }

    /// A request was refused at admission (full queue, bad line).
    pub fn rejected(&self) {
        self.lock().rejected += 1;
    }

    /// A job left the queue (about to run, or cancelled while queued).
    pub fn dequeued(&self) {
        let mut m = self.lock();
        m.queue_depth = m.queue_depth.saturating_sub(1);
    }

    /// A transient failure was retried.
    pub fn retried(&self) {
        self.lock().retries += 1;
    }

    /// A job reached a terminal status. `cached` says whether the reply
    /// was served from the result cache; `latency` is submission-to-reply.
    pub fn finished(&self, status: JobStatus, cached: bool, latency: Duration) {
        let mut m = self.lock();
        match status {
            JobStatus::Ok => m.ok += 1,
            JobStatus::Violation => m.violation += 1,
            JobStatus::Failed => m.failed += 1,
            JobStatus::Cancelled => m.cancelled += 1,
            JobStatus::Deadline => m.deadline += 1,
            JobStatus::Rejected => m.rejected += 1,
        }
        if status != JobStatus::Rejected {
            if cached {
                m.result_hits += 1;
            } else {
                m.result_misses += 1;
            }
            m.latencies.push(latency);
        }
    }

    /// Completed-job count (any terminal status except rejected).
    pub fn completed(&self) -> u64 {
        let m = self.lock();
        m.ok + m.violation + m.failed + m.cancelled + m.deadline
    }

    pub fn result_hits(&self) -> u64 {
        self.lock().result_hits
    }

    /// Renders the metrics snapshot as a single-line JSON object with
    /// sorted keys. `caches` carries both shared cache layers' counters
    /// in one [`SnapshotStats`]: the base axes are the snapshot-prefix
    /// cache, the `shared_*` axes the cross-job result cache (see
    /// `Daemon::cache_stats`).
    pub fn render(&self, caches: &SnapshotStats) -> String {
        let m = self.lock();
        let mut lat = m.latencies.clone();
        let p50 = percentile(&mut lat, 50.0).as_millis();
        let p99 = percentile(&mut lat, 99.0).as_millis();
        let completed = m.ok + m.violation + m.failed + m.cancelled + m.deadline;
        format!(
            concat!(
                "{{\"cache\":{{\"result_evictions\":{},\"result_hits\":{},\"result_misses\":{},",
                "\"snapshot_evictions\":{},\"snapshot_hits\":{},\"snapshot_misses\":{}}},",
                "\"jobs\":{{\"admitted\":{},\"cancelled\":{},\"completed\":{},",
                "\"deadline\":{},\"failed\":{},\"ok\":{},\"rejected\":{},",
                "\"retries\":{},\"violation\":{}}},",
                "\"latency_ms\":{{\"p50\":{},\"p99\":{}}},",
                "\"queue\":{{\"depth\":{},\"peak\":{}}}}}"
            ),
            caches.shared_evictions,
            caches.shared_hits,
            caches.shared_misses,
            caches.evictions,
            caches.hits,
            caches.misses,
            m.admitted,
            m.cancelled,
            completed,
            m.deadline,
            m.failed,
            m.ok,
            m.rejected,
            m.retries,
            m.violation,
            p50,
            p99,
            m.queue_depth,
            m.queue_peak,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};

    #[test]
    fn counters_track_lifecycle() {
        let metrics = Metrics::new();
        metrics.admitted();
        metrics.admitted();
        metrics.dequeued();
        metrics.finished(JobStatus::Ok, false, Duration::from_millis(10));
        metrics.dequeued();
        metrics.finished(JobStatus::Violation, true, Duration::from_millis(2));
        metrics.rejected();
        assert_eq!(metrics.completed(), 2);
        assert_eq!(metrics.result_hits(), 1);

        let caches = SnapshotStats {
            hits: 7,
            misses: 3,
            shared_hits: 1,
            shared_misses: 1,
            ..SnapshotStats::default()
        };
        let rendered = metrics.render(&caches);
        let v = parse(&rendered).expect("metrics snapshot is valid JSON");
        let jobs = v.get("jobs").unwrap();
        assert_eq!(jobs.get("admitted").and_then(Value::as_u64), Some(2));
        assert_eq!(jobs.get("ok").and_then(Value::as_u64), Some(1));
        assert_eq!(jobs.get("violation").and_then(Value::as_u64), Some(1));
        assert_eq!(jobs.get("rejected").and_then(Value::as_u64), Some(1));
        assert_eq!(jobs.get("completed").and_then(Value::as_u64), Some(2));
        let cache = v.get("cache").unwrap();
        assert_eq!(cache.get("result_hits").and_then(Value::as_u64), Some(1));
        assert_eq!(cache.get("result_misses").and_then(Value::as_u64), Some(1));
        assert_eq!(cache.get("snapshot_hits").and_then(Value::as_u64), Some(7));
        assert_eq!(
            cache.get("snapshot_misses").and_then(Value::as_u64),
            Some(3)
        );
        let queue = v.get("queue").unwrap();
        assert_eq!(queue.get("depth").and_then(Value::as_u64), Some(0));
        assert_eq!(queue.get("peak").and_then(Value::as_u64), Some(2));
    }

    #[test]
    fn latency_percentiles_are_millisecond_integers() {
        let metrics = Metrics::new();
        for ms in [10u64, 20, 30, 40] {
            metrics.finished(JobStatus::Ok, false, Duration::from_millis(ms));
        }
        let v = parse(&metrics.render(&SnapshotStats::default())).unwrap();
        let lat = v.get("latency_ms").unwrap();
        assert_eq!(lat.get("p50").and_then(Value::as_u64), Some(20));
        assert_eq!(lat.get("p99").and_then(Value::as_u64), Some(40));
    }

    #[test]
    fn render_is_deterministic_for_equal_state() {
        let a = Metrics::new();
        let b = Metrics::new();
        a.finished(JobStatus::Ok, true, Duration::from_millis(5));
        b.finished(JobStatus::Ok, true, Duration::from_millis(5));
        let stats = SnapshotStats::default();
        assert_eq!(a.render(&stats), b.render(&stats));
    }
}
