//! The daemon itself: admission, the executor loop, the two shared
//! cache layers, reply envelopes, and the two front ends (a Unix domain
//! socket serve loop and an offline `--batch` mode for CI).
//!
//! ## Wire protocol
//!
//! Requests are newline-delimited JSON (see [`crate::job`]). Every
//! request that is not a blank/`#` comment line produces exactly one
//! single-line JSON reply envelope:
//!
//! ```text
//! {"artifact":…,"cached":…,"error":…,"id":…,"metrics":{…},"status":…}
//! ```
//!
//! `artifact` is the full one-shot report (canonical JSON or SARIF) as
//! an escaped string — unescaping it yields bytes identical to what
//! `jaaru_cli --format json-canonical` / `--format sarif` prints for
//! the same job. `metrics` is the aggregate service snapshot (see
//! [`Metrics::render`]) at reply time.
//!
//! ## Failure semantics
//!
//! Everything fails closed: rejected, failed, cancelled, and
//! deadline-exceeded jobs carry `"artifact":null` plus an `error`
//! string, and are never admitted to the result cache. Only completed
//! `ok`/`violation` results are cached and replayed for duplicate
//! submissions (with `"cached":true`).

use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use jaaru::SharedSnapshotCache;
use jaaru_snapshot::{ShardedCache, SnapshotStats};

use crate::exec::{execute, job_config, CachedReply};
use crate::job::{JobSpec, Request};
use crate::json::{escape, parse};
use crate::metrics::{JobStatus, Metrics};
use crate::queue::{BoundedQueue, CancelRegistry, DEFAULT_QUEUE_CAP};

/// Default byte budget for the shared snapshot-prefix cache (matches
/// the one-shot checker's default snapshot cap).
pub const DEFAULT_SNAPSHOT_CAP: usize = 64 << 20;
/// Default byte budget for the cross-job result cache.
pub const DEFAULT_RESULT_CAP: usize = 16 << 20;

/// Daemon-wide settings, normally filled from `jaaru_cli serve` flags.
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Bounded queue capacity; submissions beyond it are rejected.
    pub queue_cap: usize,
    /// Worker threads for jobs that do not set `"jobs"` themselves.
    pub default_jobs: usize,
    /// Byte budget for the shared snapshot-prefix cache.
    pub snapshot_cap: usize,
    /// Byte budget for the cross-job result cache.
    pub result_cap: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            queue_cap: DEFAULT_QUEUE_CAP,
            default_jobs: 1,
            snapshot_cap: DEFAULT_SNAPSHOT_CAP,
            result_cap: DEFAULT_RESULT_CAP,
        }
    }
}

/// One admitted job waiting for (or undergoing) execution.
struct QueuedJob {
    id: String,
    spec: JobSpec,
    cancel: Arc<AtomicBool>,
    submitted: Instant,
    reply: Sender<String>,
}

/// What the caller should do after submitting one request line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LineAction {
    /// Blank/comment line; no reply will be produced.
    Skipped,
    /// A reply was already sent (control request or rejection).
    Replied,
    /// A job was queued; its reply arrives via the submitted sender.
    Queued,
    /// Shutdown was requested (a reply was sent); stop reading.
    Shutdown,
}

/// The checking service: admission control, a single executor draining
/// the bounded queue, and the two shared cache layers. One instance is
/// shared (via `Arc`) between the socket/batch front ends and the
/// executor thread.
pub struct Daemon {
    opts: ServeOptions,
    queue: BoundedQueue<QueuedJob>,
    cancels: CancelRegistry,
    metrics: Metrics,
    snapshots: SharedSnapshotCache,
    results: ShardedCache<CachedReply>,
    next_ordinal: AtomicU64,
    shutting_down: AtomicBool,
}

impl Daemon {
    pub fn new(opts: ServeOptions) -> Daemon {
        Daemon {
            opts,
            queue: BoundedQueue::new(opts.queue_cap),
            cancels: CancelRegistry::new(),
            metrics: Metrics::new(),
            snapshots: SharedSnapshotCache::new(opts.snapshot_cap),
            results: ShardedCache::new(opts.result_cap),
            next_ordinal: AtomicU64::new(1),
            shutting_down: AtomicBool::new(false),
        }
    }

    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The shared snapshot-prefix cache (exposed for benches/tests).
    pub fn snapshot_cache(&self) -> &SharedSnapshotCache {
        &self.snapshots
    }

    pub fn shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::Relaxed)
    }

    /// Stops admission and lets the executor drain what is queued —
    /// what a `shutdown` request does, for embedders driving the daemon
    /// through [`Daemon::submit_line`] directly.
    pub fn close(&self) {
        self.shutting_down.store(true, Ordering::Relaxed);
        self.queue.close();
    }

    /// Both cache layers' counters in one [`SnapshotStats`]: base axes
    /// are the snapshot-prefix cache, `shared_*` axes the result cache.
    pub fn cache_stats(&self) -> SnapshotStats {
        let mut stats = self.snapshots.stats();
        let results = self.results.stats();
        stats.shared_hits += results.hits;
        stats.shared_misses += results.misses;
        stats.shared_evictions += results.evictions;
        stats
    }

    fn render_metrics(&self) -> String {
        self.metrics.render(&self.cache_stats())
    }

    fn envelope(
        &self,
        id: &str,
        status: JobStatus,
        cached: bool,
        artifact: Option<&str>,
        error: Option<&str>,
    ) -> String {
        format!(
            "{{\"artifact\":{},\"cached\":{},\"error\":{},\"id\":{},\"metrics\":{},\"status\":\"{}\"}}",
            artifact.map_or_else(|| "null".to_string(), escape),
            cached,
            error.map_or_else(|| "null".to_string(), escape),
            escape(id),
            self.render_metrics(),
            status.as_str(),
        )
    }

    fn reject(&self, reply: &Sender<String>, id: &str, error: &str) -> LineAction {
        self.metrics.rejected();
        let _ = reply.send(self.envelope(id, JobStatus::Rejected, false, None, Some(error)));
        LineAction::Replied
    }

    /// Admits one request line. Control requests and rejections reply
    /// immediately on `reply`; admitted jobs reply from the executor.
    pub fn submit_line(&self, line: &str, reply: &Sender<String>) -> LineAction {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return LineAction::Skipped;
        }
        let value = match parse(line) {
            Ok(value) => value,
            Err(e) => return self.reject(reply, "", &format!("invalid JSON: {e}")),
        };
        let request = match Request::from_value(&value, self.opts.default_jobs) {
            Ok(request) => request,
            Err(e) => return self.reject(reply, "", &format!("invalid request: {e}")),
        };
        match request {
            Request::Stats => {
                let _ = reply.send(self.envelope("stats", JobStatus::Ok, false, None, None));
                LineAction::Replied
            }
            Request::Cancel { id } => {
                let (status, error) = if self.cancels.cancel(&id) {
                    (JobStatus::Ok, None)
                } else {
                    (JobStatus::Failed, Some("no such live job"))
                };
                let _ = reply.send(self.envelope(&id, status, false, None, error));
                LineAction::Replied
            }
            Request::Shutdown => {
                self.shutting_down.store(true, Ordering::Relaxed);
                self.queue.close();
                let _ = reply.send(self.envelope("shutdown", JobStatus::Ok, false, None, None));
                LineAction::Shutdown
            }
            Request::Job(spec) => {
                let ordinal = self.next_ordinal.fetch_add(1, Ordering::Relaxed);
                let id = spec.id.clone().unwrap_or_else(|| format!("job-{ordinal}"));
                let job = QueuedJob {
                    cancel: self.cancels.register(&id),
                    id,
                    spec,
                    submitted: Instant::now(),
                    reply: reply.clone(),
                };
                match self.queue.push(job) {
                    Ok(()) => {
                        self.metrics.admitted();
                        LineAction::Queued
                    }
                    Err(job) => {
                        self.cancels.deregister(&job.id);
                        self.reject(&job.reply, &job.id, "queue full")
                    }
                }
            }
        }
    }

    /// Drains the queue until it is closed and empty. Run on a
    /// dedicated thread; jobs execute one at a time (within-job
    /// parallelism comes from each job's `jobs` setting).
    pub fn run_executor(&self) {
        while let Some(job) = self.queue.pop() {
            let id = job.id.clone();
            let reply = job.reply.clone();
            let attempt =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.process(job)));
            if attempt.is_err() {
                // `process` already isolates job panics; this catches a
                // panic in the service machinery itself. Reply minimally
                // so no client hangs on a lost job, and keep draining.
                let _ = reply.send(format!(
                    "{{\"artifact\":null,\"cached\":false,\"error\":\"internal executor error\",\
                     \"id\":{},\"metrics\":{{}},\"status\":\"failed\"}}",
                    escape(&id)
                ));
                self.cancels.deregister(&id);
            }
        }
    }

    fn process(&self, job: QueuedJob) {
        self.metrics.dequeued();
        let config = job_config(&job.spec, Some(self.opts.snapshot_cap));
        let result_group = job.spec.result_group(&config);

        // Cancellation beats the cache: a cancelled duplicate must not
        // come back as a cached success.
        let (status, artifact, error, cached) = if job.cancel.load(Ordering::Relaxed) {
            (
                JobStatus::Cancelled,
                None,
                Some("cancelled before execution".to_string()),
                false,
            )
        } else if let Some(hit) = self
            .results
            .get(result_group, &[], |r: &CachedReply| r.clone())
        {
            (hit.status, Some(hit.artifact), None, true)
        } else {
            let outcome = execute(&job.spec, &config, &self.snapshots, &job.cancel);
            if outcome.retried {
                self.metrics.retried();
            }
            if let (JobStatus::Ok | JobStatus::Violation, Some(artifact)) =
                (outcome.status, outcome.artifact.as_ref())
            {
                self.results.insert(
                    result_group,
                    Vec::new(),
                    CachedReply {
                        status: outcome.status,
                        artifact: artifact.clone(),
                    },
                );
            }
            (outcome.status, outcome.artifact, outcome.error, false)
        };

        self.metrics
            .finished(status, cached, job.submitted.elapsed());
        let _ = job.reply.send(self.envelope(
            &job.id,
            status,
            cached,
            artifact.as_deref(),
            error.as_deref(),
        ));
        self.cancels.deregister(&job.id);
    }
}

/// Serves the daemon on an already-bound Unix domain socket. Each
/// connection gets a reader thread (request lines in) and a writer
/// thread (reply lines out, in completion order); replies carry job
/// ids, so pipelined clients can match them up. Returns once a
/// `shutdown` request has been processed and the queue has drained.
pub fn serve(daemon: Arc<Daemon>, listener: UnixListener) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let executor = {
        let daemon = Arc::clone(&daemon);
        thread::spawn(move || daemon.run_executor())
    };
    while !daemon.shutting_down() {
        match listener.accept() {
            Ok((stream, _)) => {
                let daemon = Arc::clone(&daemon);
                thread::spawn(move || handle_connection(&daemon, stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
    }
    executor
        .join()
        .map_err(|_| io::Error::other("executor thread panicked"))
}

fn handle_connection(daemon: &Daemon, stream: UnixStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = channel::<String>();
    let writer = thread::spawn(move || {
        let mut out = io::BufWriter::new(write_half);
        for line in rx {
            if writeln!(out, "{line}").and_then(|()| out.flush()).is_err() {
                break;
            }
        }
    });
    for line in BufReader::new(stream).lines() {
        let Ok(line) = line else { break };
        if daemon.submit_line(&line, &tx) == LineAction::Shutdown {
            break;
        }
    }
    // Executor-held clones of `tx` keep the writer alive until every
    // admitted job from this connection has replied.
    drop(tx);
    let _ = writer.join();
}

/// Offline batch mode for CI: reads request lines from `input`, writes
/// one reply line per request to `out` in input order (each job runs to
/// completion before the next line is admitted), and returns the
/// process exit code: 0 all clean, 1 violations found, 2 malformed
/// request lines, 3 failed/cancelled/deadline jobs. The most severe
/// code across the batch wins.
pub fn run_batch(daemon: &Arc<Daemon>, input: &str, out: &mut dyn Write) -> io::Result<i32> {
    let executor = {
        let daemon = Arc::clone(daemon);
        thread::spawn(move || daemon.run_executor())
    };
    let (tx, rx) = channel::<String>();
    let mut code = 0;
    for line in input.lines() {
        let action = daemon.submit_line(line, &tx);
        if action == LineAction::Skipped {
            continue;
        }
        let reply = rx
            .recv()
            .map_err(|_| io::Error::other("executor stopped without replying"))?;
        code = code.max(reply_severity(&reply));
        writeln!(out, "{reply}")?;
        if action == LineAction::Shutdown {
            break;
        }
    }
    daemon.queue.close();
    drop(tx);
    executor
        .join()
        .map_err(|_| io::Error::other("executor thread panicked"))?;
    Ok(code)
}

/// Maps one reply envelope to its batch exit-code severity.
fn reply_severity(reply: &str) -> i32 {
    match parse(reply)
        .ok()
        .as_ref()
        .and_then(|v| v.get("status"))
        .and_then(|s| s.as_str())
    {
        Some("ok") => 0,
        Some("violation") => 1,
        Some("rejected") => 2,
        // failed / cancelled / deadline — or an unreadable envelope,
        // which would itself be a service bug.
        _ => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;

    fn daemon() -> Arc<Daemon> {
        Arc::new(Daemon::new(ServeOptions::default()))
    }

    fn field<'v>(v: &'v Value, key: &str) -> &'v Value {
        v.get(key).unwrap_or_else(|| panic!("missing {key}"))
    }

    #[test]
    fn malformed_lines_are_rejected_with_metrics() {
        let d = daemon();
        let (tx, rx) = channel();
        assert_eq!(d.submit_line("not json", &tx), LineAction::Replied);
        assert_eq!(
            d.submit_line(r#"{"kind":"nope"}"#, &tx),
            LineAction::Replied
        );
        assert_eq!(d.submit_line("   ", &tx), LineAction::Skipped);
        assert_eq!(d.submit_line("# comment", &tx), LineAction::Skipped);
        for _ in 0..2 {
            let v = parse(&rx.recv().unwrap()).unwrap();
            assert_eq!(field(&v, "status").as_str(), Some("rejected"));
            assert_eq!(field(&v, "artifact"), &Value::Null);
            assert!(field(&v, "error").as_str().is_some());
            let jobs = field(field(&v, "metrics"), "jobs");
            assert!(jobs.get("rejected").and_then(Value::as_u64).unwrap() >= 1);
        }
    }

    #[test]
    fn queue_full_applies_backpressure() {
        let d = Arc::new(Daemon::new(ServeOptions {
            queue_cap: 1,
            ..ServeOptions::default()
        }));
        let (tx, rx) = channel();
        let line = r#"{"kind":"bug","suite":"recipe","row":10}"#;
        assert_eq!(d.submit_line(line, &tx), LineAction::Queued);
        assert_eq!(d.submit_line(line, &tx), LineAction::Replied, "queue full");
        let v = parse(&rx.recv().unwrap()).unwrap();
        assert_eq!(field(&v, "status").as_str(), Some("rejected"));
        assert!(field(&v, "error").as_str().unwrap().contains("queue full"));
    }

    #[test]
    fn stats_request_reports_queue_depth() {
        let d = daemon();
        let (tx, rx) = channel();
        d.submit_line(r#"{"kind":"bug","suite":"recipe","row":10}"#, &tx);
        assert_eq!(
            d.submit_line(r#"{"kind":"stats"}"#, &tx),
            LineAction::Replied
        );
        let v = parse(&rx.recv().unwrap()).unwrap();
        assert_eq!(field(&v, "id").as_str(), Some("stats"));
        let queue = field(field(&v, "metrics"), "queue");
        assert_eq!(queue.get("depth").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn batch_runs_jobs_in_order_and_aggregates_exit_code() {
        let d = daemon();
        let input = concat!(
            "# a comment\n",
            r#"{"kind":"bug","suite":"recipe","row":10,"id":"first"}"#,
            "\n",
            r#"{"kind":"check","benchmark":"no-such-bench","id":"second"}"#,
            "\n",
            r#"{"kind":"stats"}"#,
            "\n",
        );
        let mut out = Vec::new();
        let code = run_batch(&d, input, &mut out).unwrap();
        assert_eq!(code, 3, "failed job dominates the violation");
        let replies: Vec<Value> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| parse(l).unwrap())
            .collect();
        assert_eq!(replies.len(), 3, "one reply per non-comment line");
        assert_eq!(field(&replies[0], "id").as_str(), Some("first"));
        assert_eq!(field(&replies[0], "status").as_str(), Some("violation"));
        assert_eq!(field(&replies[1], "id").as_str(), Some("second"));
        assert_eq!(field(&replies[1], "status").as_str(), Some("failed"));
        assert_eq!(field(&replies[2], "id").as_str(), Some("stats"));
    }

    #[test]
    fn duplicate_batch_submissions_hit_the_result_cache() {
        let d = daemon();
        let line = r#"{"kind":"bug","suite":"recipe","row":10}"#;
        let input = format!("{line}\n{line}\n");
        let mut out = Vec::new();
        run_batch(&d, &input, &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        let replies: Vec<Value> = out.lines().map(|l| parse(l).unwrap()).collect();
        assert_eq!(field(&replies[0], "cached").as_bool(), Some(false));
        assert_eq!(field(&replies[1], "cached").as_bool(), Some(true));
        assert_eq!(
            field(&replies[0], "artifact").as_str(),
            field(&replies[1], "artifact").as_str(),
            "cached artifact is byte-identical"
        );
        assert_eq!(d.metrics().result_hits(), 1);
        let cache = field(field(&replies[1], "metrics"), "cache");
        assert_eq!(cache.get("result_hits").and_then(Value::as_u64), Some(1));
    }
}
