//! Job execution: builds the one-shot configuration for a job, looks
//! its program up in the bench registry, and runs it with panic
//! isolation, one retry, cooperative cancellation, and a deadline
//! watchdog.
//!
//! The artifact bytes come from the same renderers the one-shot CLI
//! uses (`CheckReport::to_canonical_json`, `jaaru::to_sarif`), so a
//! served reply is byte-identical to `jaaru_cli --format json-canonical`
//! / `--format sarif` for the same job.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use jaaru::{
    to_sarif_with_verified, CheckReport, Config, FixEdit, ModelChecker, Program, RepairDriver,
    RepairOutcome, SharedSnapshotCache,
};
use jaaru_bench::registry::{
    lockfree_bug_cases, lockfree_fixed_cases, pmdk_bug_cases, pmdk_fixed_cases, recipe_bug_cases,
    recipe_fixed_cases,
};
use jaaru_fuzz::{run_campaign, Oracle};
use jaaru_litmus::corpus::run_corpus_report;
use jaaru_litmus::sweep::{run_sweep, SweepBound};
use jaaru_snapshot::SnapshotPayload;

use crate::job::{ArtifactFormat, JobKind, JobSpec, Suite, Workload};
use crate::metrics::JobStatus;

/// A hidden workload name that panics *outside* the checker's own
/// guest-panic guard, as if the checking infrastructure itself blew up.
/// The smoke tests (and operators running failure drills) submit it to
/// prove such a panic turns into a `failed` reply instead of taking the
/// daemon down. (A panic *inside* a guest program is different: the
/// checker reports it as a `GuestPanic` bug, i.e. a `violation` reply
/// with a full artifact.)
pub const PANIC_WORKLOAD: &str = "__panic__";

fn is_panic_workload(workload: &Workload) -> bool {
    matches!(workload, Workload::Fixed { benchmark, .. } if benchmark == PANIC_WORKLOAD)
}

/// One finished job, ready to be wrapped in a reply envelope.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobOutcome {
    pub status: JobStatus,
    /// The rendered artifact; present only for `ok`/`violation`.
    pub artifact: Option<String>,
    /// Human-readable failure reason for every other status.
    pub error: Option<String>,
    /// Whether the run was retried after a panic before succeeding.
    pub retried: bool,
}

impl JobOutcome {
    fn failed(error: String) -> JobOutcome {
        JobOutcome {
            status: JobStatus::Failed,
            artifact: None,
            error: Some(error),
            retried: false,
        }
    }
}

/// A result-cache payload: the terminal status plus the exact artifact
/// bytes of a completed job. Only `ok`/`violation` results are cached —
/// failures, cancellations, and deadline kills always re-run (fail
/// closed, never fail cached).
#[derive(Clone, Debug)]
pub struct CachedReply {
    pub status: JobStatus,
    pub artifact: String,
}

impl SnapshotPayload for CachedReply {
    fn approx_bytes(&self) -> usize {
        self.artifact.len() + std::mem::size_of::<CachedReply>()
    }
}

/// Builds the checker configuration for a job — the same knobs
/// `jaaru_cli` sets for its one-shot subcommands, so cache groups and
/// artifacts line up between the two front ends.
pub fn job_config(spec: &JobSpec, snapshot_cap: Option<usize>) -> Config {
    let mut c = Config::new();
    c.pool_size(1 << 18)
        .max_ops_per_execution(40_000)
        .max_scenarios(20_000)
        .jobs(spec.jobs)
        .prune(spec.prune)
        .snapshots(true);
    if let Some(cap) = snapshot_cap {
        c.snapshot_cap(cap);
    }
    if spec.lint() {
        c.lints(true)
            .lint_cross_thread(true)
            .lint_torn_stores(true)
            .lint_flush_redundancy(true);
    }
    if spec.kind == JobKind::Repair {
        // Same knobs as `jaaru_cli repair`: every robustness pass, but
        // not flush-redundancy — repair must converge on the
        // crash-consistency fix, not chase advisory flush-hygiene
        // warnings on flushes the bug rows plant on purpose.
        c.lint_flush_redundancy(false);
    }
    c
}

/// Looks the job's program up in the bench registry.
fn find_program(workload: &Workload) -> Result<Box<dyn Program + Sync>, String> {
    match workload {
        // The drill workload never actually runs — `execute` panics
        // before reaching the checker — but admission still needs a
        // program value.
        Workload::Fixed { benchmark, .. } if benchmark == PANIC_WORKLOAD => {
            Ok(Box::new(|_: &dyn jaaru::PmEnv| {}))
        }
        Workload::Fixed { benchmark, keys } => recipe_fixed_cases(*keys)
            .into_iter()
            .chain(pmdk_fixed_cases(*keys))
            .chain(lockfree_fixed_cases())
            .find(|(n, _)| n.eq_ignore_ascii_case(benchmark))
            .map(|(_, p)| p)
            .ok_or_else(|| format!("unknown benchmark {benchmark:?}")),
        Workload::Row { suite, row, keys } => {
            let cases = match suite {
                Suite::Recipe => recipe_bug_cases(*keys),
                Suite::Pmdk => pmdk_bug_cases(*keys),
                Suite::Lockfree => lockfree_bug_cases(),
            };
            cases
                .into_iter()
                .find(|c| c.id == *row)
                .map(|c| c.program)
                .ok_or_else(|| format!("no row {row} in {} bug table", suite.as_str()))
        }
        Workload::Campaign { .. } => Err("fuzz campaigns have no registry program".into()),
        Workload::Litmus { .. } => Err("litmus runs have no registry program".into()),
    }
}

fn render(report: &CheckReport, format: ArtifactFormat) -> String {
    match format {
        ArtifactFormat::JsonCanonical => report.to_canonical_json(),
        ArtifactFormat::Sarif => jaaru::to_sarif(&report.diagnostics, env!("CARGO_PKG_VERSION")),
    }
}

/// The `repair` artifact: the outcome's deterministic JSON, or the
/// diagnosed findings as SARIF with proven fixes flagged `verified`.
fn render_repair(outcome: &RepairOutcome, format: ArtifactFormat) -> String {
    match format {
        ArtifactFormat::JsonCanonical => outcome.to_json(),
        ArtifactFormat::Sarif => {
            let verified: &[FixEdit] = if outcome.verified {
                &outcome.edits
            } else {
                &[]
            };
            to_sarif_with_verified(&outcome.diagnosed, env!("CARGO_PKG_VERSION"), verified)
        }
    }
}

fn verdict(report: &CheckReport) -> JobStatus {
    if report.is_clean() && !report.has_errors() {
        JobStatus::Ok
    } else {
        JobStatus::Violation
    }
}

/// Runs one job to a terminal outcome.
///
/// `cancel` is the registry flag for this job's id: set before the run
/// starts → `cancelled` without executing; set mid-run → the checker
/// winds down at the next scenario boundary and the reply fails closed
/// (no artifact). A deadline arms a watchdog thread that trips the same
/// cooperative stop but reports `deadline` instead. A panicking run is
/// caught and retried once; a second panic is a `failed` outcome.
pub fn execute(
    spec: &JobSpec,
    config: &Config,
    snapshots: &SharedSnapshotCache,
    cancel: &Arc<AtomicBool>,
) -> JobOutcome {
    if cancel.load(Ordering::Relaxed) {
        return JobOutcome {
            status: JobStatus::Cancelled,
            artifact: None,
            error: Some("cancelled before execution".into()),
            retried: false,
        };
    }
    if let Workload::Campaign {
        seeds,
        seed_start,
        ops_max,
        differential,
    } = spec.workload
    {
        return run_fuzz(spec, seeds, seed_start, ops_max, differential);
    }
    if let Workload::Litmus {
        sweep,
        max_threads,
        max_ops_per_thread,
        max_total_ops,
    } = spec.workload
    {
        let bound = SweepBound {
            max_threads,
            max_ops_per_thread,
            max_total_ops,
        };
        return run_litmus(spec, sweep, &bound);
    }

    let program = match find_program(&spec.workload) {
        Ok(program) => program,
        Err(error) => return JobOutcome::failed(error),
    };

    // Deadline watchdog: trips the job's cancel flag once the budget
    // elapses, and records that the stop was a deadline, not a client
    // cancellation. `done` disarms it when the run finishes first.
    let deadline_fired = Arc::new(AtomicBool::new(false));
    let done = Arc::new(AtomicBool::new(false));
    let watchdog = spec.deadline_ms.map(|ms| {
        let deadline = Duration::from_millis(ms);
        let cancel = Arc::clone(cancel);
        let fired = Arc::clone(&deadline_fired);
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let armed = Instant::now();
            while !done.load(Ordering::Relaxed) {
                if armed.elapsed() >= deadline {
                    fired.store(true, Ordering::Relaxed);
                    cancel.store(true, Ordering::Relaxed);
                    return;
                }
                thread::sleep(Duration::from_millis(1));
            }
        })
    });

    let mut retried = false;
    let outcome = loop {
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            if is_panic_workload(&spec.workload) {
                panic!("injected panic workload");
            }
            if spec.kind == JobKind::Repair {
                let mut driver = RepairDriver::new(config.clone());
                driver
                    .shared_cache(snapshots.clone(), spec.snapshot_group(config))
                    .abort_flag(Arc::clone(cancel));
                let outcome = driver.synthesize(&*program);
                let status = if outcome.verified {
                    JobStatus::Ok
                } else {
                    JobStatus::Violation
                };
                return (status, render_repair(&outcome, spec.format));
            }
            let mut checker = ModelChecker::new(config.clone());
            checker
                .shared_cache(snapshots.clone(), spec.snapshot_group(config))
                .abort_flag(Arc::clone(cancel));
            let report = checker.check(&*program);
            (verdict(&report), render(&report, spec.format))
        }));
        match attempt {
            Ok((status, artifact)) => {
                if deadline_fired.load(Ordering::Relaxed) {
                    break JobOutcome {
                        status: JobStatus::Deadline,
                        artifact: None,
                        error: Some(format!(
                            "deadline of {} ms exceeded",
                            spec.deadline_ms.unwrap_or(0)
                        )),
                        retried,
                    };
                }
                if cancel.load(Ordering::Relaxed) {
                    break JobOutcome {
                        status: JobStatus::Cancelled,
                        artifact: None,
                        error: Some("cancelled during execution".into()),
                        retried,
                    };
                }
                break JobOutcome {
                    status,
                    artifact: Some(artifact),
                    error: None,
                    retried,
                };
            }
            Err(payload) => {
                let message = panic_message(payload.as_ref());
                if retried || cancel.load(Ordering::Relaxed) {
                    break JobOutcome {
                        status: JobStatus::Failed,
                        artifact: None,
                        error: Some(format!("job panicked: {message}")),
                        retried,
                    };
                }
                retried = true;
            }
        }
    };
    done.store(true, Ordering::Relaxed);
    if let Some(handle) = watchdog {
        let _ = handle.join();
    }
    outcome
}

fn run_fuzz(
    spec: &JobSpec,
    seeds: u64,
    seed_start: u64,
    ops_max: usize,
    differential: bool,
) -> JobOutcome {
    let oracle = Oracle {
        jobs: spec.jobs,
        differential,
        ..Oracle::default()
    };
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        run_campaign(&oracle, seed_start, seeds, ops_max, |_, _| {})
    }));
    match attempt {
        Ok(report) => JobOutcome {
            status: if report.is_clean() {
                JobStatus::Ok
            } else {
                JobStatus::Violation
            },
            // Fuzz campaigns always reply with the campaign JSON —
            // there is no SARIF view of a campaign.
            artifact: Some(report.to_json()),
            error: None,
            retried: false,
        },
        Err(payload) => JobOutcome::failed(format!(
            "fuzz campaign panicked: {}",
            panic_message(payload.as_ref())
        )),
    }
}

/// A `litmus` job: the named corpus or the exhaustive conformance
/// sweep. The artifact is always the deterministic JSON report (there
/// is no SARIF view of a conformance run); a divergence or corpus
/// failure is a `violation` reply so batch mode fails the pipeline.
fn run_litmus(spec: &JobSpec, sweep: bool, bound: &SweepBound) -> JobOutcome {
    let jobs = spec.jobs.max(1);
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        if sweep {
            let report = run_sweep(bound, jobs);
            (report.is_clean(), report.to_json())
        } else {
            let report = run_corpus_report();
            (report.is_clean(), report.to_json())
        }
    }));
    match attempt {
        Ok((clean, artifact)) => JobOutcome {
            status: if clean {
                JobStatus::Ok
            } else {
                JobStatus::Violation
            },
            artifact: Some(artifact),
            error: None,
            retried: false,
        },
        Err(payload) => JobOutcome::failed(format!(
            "litmus run panicked: {}",
            panic_message(payload.as_ref())
        )),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("<non-string panic payload>")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobKind, Request};
    use crate::json::parse;

    fn spec(line: &str) -> JobSpec {
        match Request::from_value(&parse(line).unwrap(), 1).unwrap() {
            Request::Job(spec) => spec,
            other => panic!("expected job, got {other:?}"),
        }
    }

    fn run(spec: &JobSpec) -> JobOutcome {
        let config = job_config(spec, None);
        let cache = SharedSnapshotCache::new(1 << 20);
        execute(spec, &config, &cache, &Arc::new(AtomicBool::new(false)))
    }

    #[test]
    fn unknown_benchmark_fails_closed() {
        let out = run(&spec(r#"{"kind":"check","benchmark":"no-such-bench"}"#));
        assert_eq!(out.status, JobStatus::Failed);
        assert!(out.artifact.is_none());
        assert!(out.error.unwrap().contains("no-such-bench"));
    }

    #[test]
    fn bad_row_fails_closed() {
        let out = run(&spec(r#"{"kind":"bug","suite":"recipe","row":9999}"#));
        assert_eq!(out.status, JobStatus::Failed);
    }

    #[test]
    fn panic_workload_is_isolated_and_retried_once() {
        let out = run(&spec(&format!(
            r#"{{"kind":"check","benchmark":"{PANIC_WORKLOAD}"}}"#
        )));
        assert_eq!(out.status, JobStatus::Failed);
        assert!(out.retried, "one retry before giving up");
        assert!(out.error.unwrap().contains("injected panic"));
    }

    #[test]
    fn precancelled_job_never_runs() {
        let spec = spec(r#"{"kind":"check","benchmark":"p-clht"}"#);
        let config = job_config(&spec, None);
        let cache = SharedSnapshotCache::new(1 << 20);
        let cancel = Arc::new(AtomicBool::new(true));
        let out = execute(&spec, &config, &cache, &cancel);
        assert_eq!(out.status, JobStatus::Cancelled);
        assert!(out.artifact.is_none(), "fails closed");
    }

    #[test]
    fn litmus_jobs_reply_ok_with_deterministic_artifacts() {
        let corpus = run(&spec(r#"{"kind":"litmus"}"#));
        assert_eq!(corpus.status, JobStatus::Ok, "{:?}", corpus.error);
        let artifact = corpus.artifact.expect("corpus report");
        assert!(artifact.contains("\"clean\": true"), "{artifact}");
        let again = run(&spec(r#"{"kind":"litmus"}"#));
        assert_eq!(Some(artifact), again.artifact, "byte-identical replies");

        let sweep = run(&spec(
            r#"{"kind":"litmus","mode":"sweep","max_ops_per_thread":2,"max_total_ops":2,"jobs":2}"#,
        ));
        assert_eq!(sweep.status, JobStatus::Ok, "{:?}", sweep.error);
        let artifact = sweep.artifact.expect("sweep report");
        assert!(artifact.contains("\"clean\": true"), "{artifact}");
        assert!(artifact.contains("\"fingerprint\""), "{artifact}");
    }

    #[test]
    fn seeded_bug_reports_violation_with_canonical_artifact() {
        let spec = spec(r#"{"kind":"bug","suite":"recipe","row":10}"#);
        let out = run(&spec);
        assert_eq!(out.status, JobStatus::Violation);
        let artifact = out.artifact.expect("violation still carries the report");
        assert!(artifact.contains("\"executions_logical\""));
        assert!(!artifact.contains("duration_secs"), "canonical view");
        assert_eq!(spec.kind, JobKind::Bug);
    }

    #[test]
    fn prune_off_job_reaches_the_same_verdict_and_bug() {
        let pruned = run(&spec(r#"{"kind":"bug","suite":"recipe","row":10}"#));
        let plain = run(&spec(
            r#"{"kind":"bug","suite":"recipe","row":10,"prune":false}"#,
        ));
        assert_eq!(pruned.status, JobStatus::Violation);
        assert_eq!(plain.status, JobStatus::Violation);
        let (pruned, plain) = (pruned.artifact.unwrap(), plain.artifact.unwrap());
        // Exploration stats legitimately differ (that is the point of
        // pruning); the reported bug must not.
        for artifact in [&pruned, &plain] {
            assert!(
                artifact.contains("durably committed key lost"),
                "{artifact}"
            );
        }
    }

    #[test]
    fn repair_job_verifies_a_bug_row_and_reports_ok() {
        let spec = spec(r#"{"kind":"repair","suite":"recipe","row":3,"keys":3}"#);
        let out = run(&spec);
        assert_eq!(out.status, JobStatus::Ok, "{:?}", out.error);
        let artifact = out.artifact.expect("verified repair carries the outcome");
        assert!(artifact.contains("\"verified\": true"), "{artifact}");
        assert!(artifact.contains("\"edit\": \"insert-"), "{artifact}");
    }

    #[test]
    fn repair_config_drops_flush_redundancy_but_keeps_lints() {
        let repair = spec(r#"{"kind":"repair","benchmark":"p-clht"}"#);
        let lint = spec(r#"{"kind":"lint","benchmark":"p-clht"}"#);
        let config = job_config(&repair, None);
        assert!(config.lints_value() && !config.lint_flush_redundancy_value());
        assert_ne!(
            config.fingerprint(),
            job_config(&lint, None).fingerprint(),
            "repair verifies under its own semantic config"
        );
    }

    #[test]
    fn lint_config_matches_cli_lint_knobs() {
        let lint = spec(r#"{"kind":"lint","benchmark":"p-clht"}"#);
        let check = spec(r#"{"kind":"check","benchmark":"p-clht"}"#);
        assert_ne!(
            job_config(&lint, None).fingerprint(),
            job_config(&check, None).fingerprint(),
            "lint passes are semantic"
        );
    }
}
