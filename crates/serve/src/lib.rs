//! Checking as a service for the Jaaru reproduction.
//!
//! Model-checking jobs in CI tend to be near-duplicates: the same
//! benchmark checked on every push, the same bug row linted under two
//! output formats, the same campaign re-run with one knob moved. A
//! one-shot CLI pays the full exploration cost every time. This crate
//! runs the checker as a long-lived daemon so that cost is shared:
//!
//! - **Job queue** ([`queue`], [`job`]): newline-delimited JSON job
//!   specs (`check` / `bug` / `lint` / `repair` / `fuzz` / `litmus`)
//!   over a Unix domain
//!   socket or an offline `--batch` file; a bounded queue rejects
//!   overload instead of blocking, and every job can carry a deadline
//!   or be cancelled by id.
//! - **Executor** ([`exec`], [`daemon`]): jobs run one at a time on the
//!   in-process checker (within-job parallelism via each job's `jobs`
//!   knob), with panics isolated into `failed` replies, one retry for
//!   transient failures, and cooperative deadline/cancellation stops at
//!   scenario boundaries.
//! - **Shared cross-job cache**: completed `ok`/`violation` artifacts
//!   are replayed byte-identically for duplicate submissions, and all
//!   jobs share one sharded snapshot-prefix cache
//!   ([`jaaru::SharedSnapshotCache`]), so a resubmitted or related job
//!   restores crash-point prefixes other jobs already paid for.
//! - **Service metrics** ([`metrics`]): queue depth, per-status
//!   completion counts, cache hit rates for both layers, and p50/p99
//!   latency, rendered deterministically into every reply envelope and
//!   on demand via a `stats` request.
//!
//! The front end is `jaaru_cli serve` (socket) or `jaaru_cli serve
//! --batch FILE` (CI); see `crates/cli`. Artifact bytes are pinned to
//! the one-shot renderers, so migrating a pipeline from `jaaru_cli
//! check` to the daemon changes latency, never output.

pub mod daemon;
pub mod exec;
pub mod job;
pub mod json;
pub mod metrics;
pub mod queue;

pub use daemon::{run_batch, serve, Daemon, LineAction, ServeOptions};
pub use exec::{execute, job_config, CachedReply, JobOutcome, PANIC_WORKLOAD};
pub use job::{ArtifactFormat, JobKind, JobSpec, Request, Suite, Workload};
pub use metrics::{JobStatus, Metrics};
