//! A minimal hand-rolled JSON layer for the wire protocol.
//!
//! The workspace builds offline with no serialization dependency, so the
//! daemon parses its newline-delimited requests with this small
//! recursive-descent parser and emits replies through the same escaping
//! helpers the core report uses. It accepts exactly standard JSON
//! (RFC 8259) minus one deliberate restriction: numbers are parsed as
//! `f64` (every protocol field fits losslessly — ids, key counts, byte
//! budgets, millisecond deadlines).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Objects use a [`BTreeMap`] so re-serialization
/// is deterministic (sorted keys) no matter the input order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value under `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// This value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parse failure, with a byte offset into the input line.
#[derive(Debug, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &'static str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Value::Number)
            .ok_or(ParseError {
                offset: start,
                message: "invalid number",
            })
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|b| std::str::from_utf8(b).ok())
                                .and_then(|s| u32::from_str_radix(s, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let code = if (0xd800..0xdc00).contains(&hex) {
                                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let low = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .and_then(|b| std::str::from_utf8(b).ok())
                                    .and_then(|s| u32::from_str_radix(s, 16).ok())
                                    .filter(|l| (0xdc00..0xe000).contains(l))
                                    .ok_or_else(|| self.err("unpaired surrogate"))?;
                                self.pos += 4;
                                0x10000 + ((hex - 0xd800) << 10) + (low - 0xdc00)
                            } else {
                                hex
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character")),
                Some(_) => {
                    // Copy one UTF-8 scalar (the input is a &str, so the
                    // bytes are valid UTF-8).
                    let s = std::str::from_utf8(&self.bytes[self.pos..]).expect("valid utf-8");
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }
}

/// Escapes `s` as a JSON string literal, double quotes included. The
/// inverse of the parser's string rule: `parse` of the result yields
/// `s` back byte-for-byte, which is what lets multi-line artifacts ride
/// inside single-line reply envelopes without losing byte identity.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Number(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Number(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"kind":"check","keys":6,"opts":{"deep":[1,2,{}]},"x":null}"#).unwrap();
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("check"));
        assert_eq!(v.get("keys").and_then(Value::as_u64), Some(6));
        assert_eq!(v.get("x"), Some(&Value::Null));
        assert!(
            matches!(v.get("opts").unwrap().get("deep"), Some(Value::Array(a)) if a.len() == 3)
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err(), "trailing characters");
        assert!(parse("\"\x01\"").is_err(), "raw control char");
        assert!(parse("1e999").is_err(), "non-finite number");
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "line1\nline2\t\"quoted\" \\backslash\\ \u{1}\u{1f980} end";
        let escaped = escape(nasty);
        assert!(!escaped[1..escaped.len() - 1].contains('\n'), "single line");
        assert_eq!(parse(&escaped).unwrap(), Value::String(nasty.into()));
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            parse(r#""A🦀""#).unwrap(),
            Value::String("A\u{1f980}".into())
        );
        assert!(parse(r#""\ud83e""#).is_err(), "unpaired surrogate");
    }

    #[test]
    fn u64_extraction_rejects_fractions_and_negatives() {
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
        assert_eq!(parse("3").unwrap().as_u64(), Some(3));
    }
}
