//! The wire protocol's request side: job specifications and control
//! requests, parsed from newline-delimited JSON.
//!
//! One line, one request. Job requests name a program out of the bench
//! registry (the same identities `jaaru_cli check`/`bug`/`lint` accept)
//! plus per-job knobs; control requests (`stats`, `cancel`, `shutdown`)
//! steer the daemon itself.
//!
//! ```text
//! {"kind": "check", "benchmark": "P-CLHT", "keys": 6}
//! {"kind": "bug", "suite": "recipe", "row": 10, "format": "sarif"}
//! {"kind": "lint", "suite": "pmdk", "row": 2, "jobs": 4}
//! {"kind": "repair", "suite": "recipe", "row": 3, "format": "sarif"}
//! {"kind": "fuzz", "seeds": 50, "ops_max": 10, "differential": true}
//! {"kind": "litmus", "mode": "sweep", "max_total_ops": 3}
//! {"kind": "cancel", "id": "job-3"}
//! {"kind": "stats"}
//! {"kind": "shutdown"}
//! ```

use jaaru::Config;

use crate::json::Value;

/// Default key count for check/lint jobs (matches `jaaru_cli check`).
pub const DEFAULT_CHECK_KEYS: usize = 6;
/// Default key count for bug-row jobs (matches `jaaru_cli bug`).
pub const DEFAULT_BUG_KEYS: usize = 5;

/// What kind of work a job runs; mirrors the one-shot subcommands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobKind {
    /// Exhaustively check a fixed benchmark by name.
    Check,
    /// Check one seeded-bug row from a bug table.
    Bug,
    /// Lint (all graph passes on) a benchmark or bug row.
    Lint,
    /// Synthesize and verify a flush/fence repair for a benchmark or
    /// bug row (diagnose → fix → verify → minimize).
    Repair,
    /// Run a differential fuzzing campaign.
    Fuzz,
    /// Run the Px86 conformance harness (named litmus corpus or the
    /// exhaustive operational-vs-axiomatic sweep).
    Litmus,
}

impl JobKind {
    pub fn as_str(self) -> &'static str {
        match self {
            JobKind::Check => "check",
            JobKind::Bug => "bug",
            JobKind::Lint => "lint",
            JobKind::Repair => "repair",
            JobKind::Fuzz => "fuzz",
            JobKind::Litmus => "litmus",
        }
    }
}

/// Which bug table a `bug`/`lint` row job indexes into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Suite {
    Recipe,
    Pmdk,
    Lockfree,
}

impl Suite {
    pub fn as_str(self) -> &'static str {
        match self {
            Suite::Recipe => "recipe",
            Suite::Pmdk => "pmdk",
            Suite::Lockfree => "lockfree",
        }
    }
}

/// The program a job runs, by registry identity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Workload {
    /// A fixed benchmark by (case-insensitive) name.
    Fixed { benchmark: String, keys: usize },
    /// A seeded-bug table row.
    Row {
        suite: Suite,
        row: usize,
        keys: usize,
    },
    /// A generated fuzzing campaign.
    Campaign {
        seeds: u64,
        seed_start: u64,
        ops_max: usize,
        differential: bool,
    },
    /// A Px86 conformance run: the named corpus, or an exhaustive
    /// sweep at the given bound (bound fields are ignored for the
    /// corpus mode but kept so the workload identity is total).
    Litmus {
        sweep: bool,
        max_threads: usize,
        max_ops_per_thread: usize,
        max_total_ops: usize,
    },
}

/// Reply artifact format. `JsonCanonical` is the service default: the
/// run-invariant JSON view that is byte-identical across worker counts
/// and cache states (see `CheckReport::to_canonical_json`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArtifactFormat {
    JsonCanonical,
    Sarif,
}

impl ArtifactFormat {
    pub fn as_str(self) -> &'static str {
        match self {
            ArtifactFormat::JsonCanonical => "json",
            ArtifactFormat::Sarif => "sarif",
        }
    }
}

/// One parsed job: what to run and how.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Client-chosen id echoed in the reply (cancellation handle).
    /// Defaults to the admission ordinal (`"job-<n>"`).
    pub id: Option<String>,
    pub kind: JobKind,
    pub workload: Workload,
    pub format: ArtifactFormat,
    /// Worker threads for this job's exploration (the one-shot
    /// `--jobs`); performance-only, invisible in the artifact.
    pub jobs: usize,
    /// Whether static persistence slicing prunes the exploration
    /// (the one-shot default; `"prune": false` mirrors `--no-prune`).
    /// Semantic for caching: it changes the exploration even though
    /// verdicts and findings are preserved, so it is part of the
    /// config fingerprint the cache groups fold in.
    pub prune: bool,
    /// Cooperative deadline in milliseconds; `None` = no deadline.
    pub deadline_ms: Option<u64>,
}

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    Job(JobSpec),
    /// Reply with the aggregate service-metrics snapshot.
    Stats,
    /// Cancel the queued or running job with the given id.
    Cancel {
        id: String,
    },
    /// Drain and stop the daemon.
    Shutdown,
}

/// Why a request line was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl Request {
    /// Parses one request from an already-parsed JSON line. `default_jobs`
    /// fills the per-job worker count when the spec has no `jobs` field.
    pub fn from_value(value: &Value, default_jobs: usize) -> Result<Request, SpecError> {
        let kind = value
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| SpecError("missing \"kind\"".into()))?;
        match kind {
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            "cancel" => {
                let id = value
                    .get("id")
                    .and_then(Value::as_str)
                    .ok_or_else(|| SpecError("cancel requires \"id\"".into()))?;
                Ok(Request::Cancel { id: id.to_string() })
            }
            "check" | "bug" | "lint" | "repair" | "fuzz" | "litmus" => {
                Ok(Request::Job(parse_job(kind, value, default_jobs)?))
            }
            other => Err(SpecError(format!("unknown kind {other:?}"))),
        }
    }
}

fn parse_job(kind: &str, value: &Value, default_jobs: usize) -> Result<JobSpec, SpecError> {
    let kind = match kind {
        "check" => JobKind::Check,
        "bug" => JobKind::Bug,
        "lint" => JobKind::Lint,
        "repair" => JobKind::Repair,
        "fuzz" => JobKind::Fuzz,
        "litmus" => JobKind::Litmus,
        _ => unreachable!("caller matched kind"),
    };
    let get_usize = |key: &str| -> Result<Option<usize>, SpecError> {
        match value.get(key) {
            None | Some(Value::Null) => Ok(None),
            Some(v) => v
                .as_u64()
                .map(|n| Some(n as usize))
                .ok_or_else(|| SpecError(format!("{key:?} must be a non-negative integer"))),
        }
    };

    let benchmark = value.get("benchmark").and_then(Value::as_str);
    let suite = match value.get("suite").and_then(Value::as_str) {
        None => None,
        Some("recipe") => Some(Suite::Recipe),
        Some("pmdk") => Some(Suite::Pmdk),
        Some("lockfree") => Some(Suite::Lockfree),
        Some(other) => return Err(SpecError(format!("unknown suite {other:?}"))),
    };
    let row = get_usize("row")?;

    let workload = match kind {
        JobKind::Fuzz => Workload::Campaign {
            seeds: value.get("seeds").and_then(Value::as_u64).unwrap_or(20),
            seed_start: value.get("seed_start").and_then(Value::as_u64).unwrap_or(0),
            ops_max: get_usize("ops_max")?.unwrap_or(10),
            differential: value
                .get("differential")
                .and_then(Value::as_bool)
                .unwrap_or(false),
        },
        JobKind::Litmus => {
            let sweep = match value.get("mode").and_then(Value::as_str) {
                None | Some("corpus") => false,
                Some("sweep") => true,
                Some(other) => return Err(SpecError(format!("unknown litmus mode {other:?}"))),
            };
            Workload::Litmus {
                sweep,
                max_threads: get_usize("max_threads")?.unwrap_or(2),
                max_ops_per_thread: get_usize("max_ops_per_thread")?.unwrap_or(4),
                max_total_ops: get_usize("max_total_ops")?.unwrap_or(4),
            }
        }
        JobKind::Check => {
            let benchmark = benchmark
                .ok_or_else(|| SpecError("check requires \"benchmark\"".into()))?
                .to_string();
            Workload::Fixed {
                benchmark,
                keys: get_usize("keys")?.unwrap_or(DEFAULT_CHECK_KEYS),
            }
        }
        JobKind::Bug => {
            let suite = suite.ok_or_else(|| SpecError("bug requires \"suite\"".into()))?;
            let row = row.ok_or_else(|| SpecError("bug requires \"row\"".into()))?;
            Workload::Row {
                suite,
                row,
                keys: get_usize("keys")?.unwrap_or(DEFAULT_BUG_KEYS),
            }
        }
        // Lint and repair take either shape, like the one-shot CLI.
        JobKind::Lint | JobKind::Repair => match (benchmark, suite) {
            (Some(benchmark), None) => Workload::Fixed {
                benchmark: benchmark.to_string(),
                keys: get_usize("keys")?.unwrap_or(DEFAULT_CHECK_KEYS),
            },
            (None, Some(suite)) => {
                let row = row.ok_or_else(|| {
                    SpecError(format!("{} by suite requires \"row\"", kind.as_str()))
                })?;
                Workload::Row {
                    suite,
                    row,
                    keys: get_usize("keys")?.unwrap_or(DEFAULT_BUG_KEYS),
                }
            }
            _ => {
                return Err(SpecError(format!(
                    "{} requires \"benchmark\" or \"suite\"+\"row\"",
                    kind.as_str()
                )))
            }
        },
    };

    let format = match value.get("format").and_then(Value::as_str) {
        None | Some("json") | Some("json-canonical") => ArtifactFormat::JsonCanonical,
        Some("sarif") => ArtifactFormat::Sarif,
        Some(other) => return Err(SpecError(format!("unknown format {other:?}"))),
    };

    Ok(JobSpec {
        id: value.get("id").and_then(Value::as_str).map(str::to_string),
        kind,
        workload,
        format,
        jobs: get_usize("jobs")?.unwrap_or(default_jobs),
        prune: value.get("prune").and_then(Value::as_bool).unwrap_or(true),
        deadline_ms: value.get("deadline_ms").and_then(Value::as_u64),
    })
}

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

impl JobSpec {
    /// Whether this job's lint passes are on (mirrors one-shot `lint`;
    /// repair diagnoses and verifies against the same passes, minus
    /// flush-redundancy — see `job_config`).
    pub fn lint(&self) -> bool {
        matches!(self.kind, JobKind::Lint | JobKind::Repair)
    }

    /// A stable hash of the *program* this job runs: kind-normalized
    /// workload identity, independent of format/jobs/deadline.
    pub fn program_hash(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        match &self.workload {
            Workload::Fixed { benchmark, keys } => {
                fnv1a(&mut hash, b"fixed:");
                fnv1a(&mut hash, benchmark.to_ascii_lowercase().as_bytes());
                fnv1a(&mut hash, &(*keys as u64).to_le_bytes());
            }
            Workload::Row { suite, row, keys } => {
                fnv1a(&mut hash, b"row:");
                fnv1a(&mut hash, suite.as_str().as_bytes());
                fnv1a(&mut hash, &(*row as u64).to_le_bytes());
                fnv1a(&mut hash, &(*keys as u64).to_le_bytes());
            }
            Workload::Campaign {
                seeds,
                seed_start,
                ops_max,
                differential,
            } => {
                fnv1a(&mut hash, b"fuzz:");
                fnv1a(&mut hash, &seeds.to_le_bytes());
                fnv1a(&mut hash, &seed_start.to_le_bytes());
                fnv1a(&mut hash, &(*ops_max as u64).to_le_bytes());
                fnv1a(&mut hash, &[*differential as u8]);
            }
            Workload::Litmus {
                sweep,
                max_threads,
                max_ops_per_thread,
                max_total_ops,
            } => {
                fnv1a(&mut hash, b"litmus:");
                fnv1a(&mut hash, &[*sweep as u8]);
                fnv1a(&mut hash, &(*max_threads as u64).to_le_bytes());
                fnv1a(&mut hash, &(*max_ops_per_thread as u64).to_le_bytes());
                fnv1a(&mut hash, &(*max_total_ops as u64).to_le_bytes());
            }
        }
        hash
    }

    /// The group key this job's *snapshot prefixes* live under in the
    /// shared cache: (program, semantic config) — format excluded, so a
    /// JSON and a SARIF submission of the same job warm each other.
    pub fn snapshot_group(&self, config: &Config) -> u64 {
        let mut hash = self.program_hash();
        fnv1a(&mut hash, &config.fingerprint().to_le_bytes());
        hash
    }

    /// The group key this job's *result* lives under in the shared
    /// cache: the snapshot group plus the artifact format and kind (a
    /// lint and a check of the same program produce different
    /// artifacts, as do JSON and SARIF).
    pub fn result_group(&self, config: &Config) -> u64 {
        let mut hash = self.snapshot_group(config);
        fnv1a(&mut hash, self.kind.as_str().as_bytes());
        fnv1a(&mut hash, self.format.as_str().as_bytes());
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn req(line: &str) -> Result<Request, SpecError> {
        Request::from_value(&parse(line).unwrap(), 1)
    }

    fn job(line: &str) -> JobSpec {
        match req(line).unwrap() {
            Request::Job(spec) => spec,
            other => panic!("expected a job, got {other:?}"),
        }
    }

    #[test]
    fn parses_check_with_defaults() {
        let spec = job(r#"{"kind":"check","benchmark":"P-CLHT"}"#);
        assert_eq!(spec.kind, JobKind::Check);
        assert_eq!(
            spec.workload,
            Workload::Fixed {
                benchmark: "P-CLHT".into(),
                keys: DEFAULT_CHECK_KEYS
            }
        );
        assert_eq!(spec.format, ArtifactFormat::JsonCanonical);
        assert_eq!(spec.jobs, 1, "default_jobs flows in");
        assert_eq!(spec.deadline_ms, None);
        assert!(!spec.lint());
    }

    #[test]
    fn parses_bug_row_and_options() {
        let spec = job(
            r#"{"kind":"bug","suite":"pmdk","row":2,"keys":4,"format":"sarif","jobs":4,"deadline_ms":500,"id":"j1"}"#,
        );
        assert_eq!(
            spec.workload,
            Workload::Row {
                suite: Suite::Pmdk,
                row: 2,
                keys: 4
            }
        );
        assert_eq!(spec.format, ArtifactFormat::Sarif);
        assert_eq!(spec.jobs, 4);
        assert_eq!(spec.deadline_ms, Some(500));
        assert_eq!(spec.id.as_deref(), Some("j1"));
    }

    #[test]
    fn lint_takes_either_shape() {
        let by_name = job(r#"{"kind":"lint","benchmark":"cceh"}"#);
        assert!(by_name.lint());
        assert!(matches!(by_name.workload, Workload::Fixed { .. }));
        let by_row = job(r#"{"kind":"lint","suite":"recipe","row":10}"#);
        assert!(matches!(
            by_row.workload,
            Workload::Row {
                suite: Suite::Recipe,
                row: 10,
                keys: DEFAULT_BUG_KEYS
            }
        ));
        assert!(req(r#"{"kind":"lint"}"#).is_err());
    }

    #[test]
    fn repair_takes_either_shape_and_separates_cache_results() {
        let by_name = job(r#"{"kind":"repair","benchmark":"cceh"}"#);
        assert_eq!(by_name.kind, JobKind::Repair);
        assert!(by_name.lint(), "repair runs the lint passes");
        assert!(matches!(by_name.workload, Workload::Fixed { .. }));
        let by_row = job(r#"{"kind":"repair","suite":"recipe","row":3}"#);
        assert!(matches!(by_row.workload, Workload::Row { .. }));
        assert!(req(r#"{"kind":"repair"}"#).is_err());

        // A repair and a lint of the same row share snapshots but not
        // results: the artifacts differ.
        let config = Config::new();
        let lint = job(r#"{"kind":"lint","suite":"recipe","row":3}"#);
        assert_ne!(by_row.result_group(&config), lint.result_group(&config));
    }

    #[test]
    fn parses_control_requests() {
        assert_eq!(req(r#"{"kind":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(req(r#"{"kind":"shutdown"}"#).unwrap(), Request::Shutdown);
        assert_eq!(
            req(r#"{"kind":"cancel","id":"job-7"}"#).unwrap(),
            Request::Cancel { id: "job-7".into() }
        );
        assert!(req(r#"{"kind":"cancel"}"#).is_err());
        assert!(req(r#"{"kind":"frobnicate"}"#).is_err());
        assert!(req(r#"{"benchmark":"cceh"}"#).is_err(), "kind required");
    }

    #[test]
    fn missing_required_fields_are_errors() {
        assert!(req(r#"{"kind":"check"}"#).is_err());
        assert!(req(r#"{"kind":"bug","suite":"recipe"}"#).is_err());
        assert!(req(r#"{"kind":"bug","row":1}"#).is_err());
        assert!(req(r#"{"kind":"bug","suite":"nope","row":1}"#).is_err());
        assert!(req(r#"{"kind":"check","benchmark":"x","keys":-1}"#).is_err());
        assert!(req(r#"{"kind":"check","benchmark":"x","format":"yaml"}"#).is_err());
    }

    #[test]
    fn cache_keys_separate_programs_but_not_performance_knobs() {
        let config = Config::new();
        let a = job(r#"{"kind":"check","benchmark":"P-CLHT"}"#);
        let b = job(r#"{"kind":"check","benchmark":"p-clht","jobs":4,"deadline_ms":99}"#);
        assert_eq!(a.program_hash(), b.program_hash(), "case and knobs ignored");
        assert_eq!(a.result_group(&config), b.result_group(&config));

        let other = job(r#"{"kind":"check","benchmark":"CCEH"}"#);
        assert_ne!(a.program_hash(), other.program_hash());

        let more_keys = job(r#"{"kind":"check","benchmark":"P-CLHT","keys":9}"#);
        assert_ne!(a.program_hash(), more_keys.program_hash());
    }

    #[test]
    fn prune_defaults_on_and_is_semantic_for_caching() {
        let on = job(r#"{"kind":"check","benchmark":"P-CLHT"}"#);
        assert!(on.prune, "matches the one-shot CLI default");
        let off = job(r#"{"kind":"check","benchmark":"P-CLHT","prune":false}"#);
        assert!(!off.prune);
        // The knob flows into the config fingerprint, so the pruned and
        // unpruned runs of the same program never share snapshot
        // prefixes or cached results.
        let mut pruned = Config::new();
        pruned.prune(true);
        let plain = Config::new();
        assert_ne!(on.snapshot_group(&pruned), off.snapshot_group(&plain));
        assert_ne!(on.result_group(&pruned), off.result_group(&plain));
    }

    #[test]
    fn result_group_separates_format_and_kind_but_snapshot_group_does_not() {
        let config = Config::new();
        let json = job(r#"{"kind":"bug","suite":"recipe","row":10}"#);
        let sarif = job(r#"{"kind":"bug","suite":"recipe","row":10,"format":"sarif"}"#);
        assert_eq!(json.snapshot_group(&config), sarif.snapshot_group(&config));
        assert_ne!(json.result_group(&config), sarif.result_group(&config));
    }

    #[test]
    fn litmus_job_parses_and_hashes_by_bound() {
        let corpus = job(r#"{"kind":"litmus"}"#);
        assert_eq!(corpus.kind, JobKind::Litmus);
        assert_eq!(
            corpus.workload,
            Workload::Litmus {
                sweep: false,
                max_threads: 2,
                max_ops_per_thread: 4,
                max_total_ops: 4
            }
        );
        let sweep = job(r#"{"kind":"litmus","mode":"sweep","max_total_ops":3}"#);
        assert!(matches!(
            sweep.workload,
            Workload::Litmus {
                sweep: true,
                max_total_ops: 3,
                ..
            }
        ));
        assert_ne!(
            corpus.program_hash(),
            sweep.program_hash(),
            "mode and bound are workload identity"
        );
        assert!(req(r#"{"kind":"litmus","mode":"nope"}"#).is_err());
    }

    #[test]
    fn fuzz_campaign_parses() {
        let spec = job(r#"{"kind":"fuzz","seeds":5,"ops_max":8,"differential":true}"#);
        assert_eq!(
            spec.workload,
            Workload::Campaign {
                seeds: 5,
                seed_start: 0,
                ops_max: 8,
                differential: true
            }
        );
    }
}
