//! Environments used by the eager baseline: an instrumented pre-failure
//! environment that crashes at a designated injection point, and a
//! concrete post-failure environment over a materialized memory state.

use std::cell::RefCell;
use std::panic::panic_any;

use jaaru::{PmEnv, PmPool};
use jaaru_pmem::{CacheLineId, PmAddr, CACHE_LINE_SIZE, NULL_PAGE_SIZE};
use jaaru_tso::{CurrentRead, EvictionPolicy, ExecutionStorage, ThreadId, TsoMachine};

/// Panic payload: the designated injection point was reached.
pub(crate) struct YatCrash;

/// Panic payload: a bug manifested during an eagerly explored execution.
pub(crate) struct YatBugSignal(pub String);

/// Runs the pre-failure part of a program on the TSO machine, unwinding
/// with [`YatCrash`] at injection point `crash_at` (or running to
/// completion when `crash_at` is `None`).
///
/// Injection-point placement mirrors the Jaaru checker exactly — before
/// every flush instruction, before fences with pending `clflushopt`
/// effects, and at the end of the execution — so the two tools explore
/// the same crash points and are directly comparable.
pub(crate) struct PreFailureEnv {
    inner: RefCell<PreInner>,
    pool_size: u64,
    crash_at: Option<usize>,
}

struct PreInner {
    machine: TsoMachine,
    bump: u64,
    points_seen: usize,
    writes_since_point: bool,
    any_writes: bool,
    ops: u64,
    current_tid: ThreadId,
    next_tid: u32,
}

/// Hard per-execution op budget for baseline runs.
const MAX_OPS: u64 = 10_000_000;

impl PreFailureEnv {
    pub(crate) fn new(pool_size: usize, crash_at: Option<usize>) -> Self {
        PreFailureEnv {
            inner: RefCell::new(PreInner {
                machine: TsoMachine::new(EvictionPolicy::Eager),
                bump: 2 * CACHE_LINE_SIZE as u64,
                points_seen: 0,
                writes_since_point: false,
                any_writes: false,
                ops: 0,
                current_tid: ThreadId(0),
                next_tid: 1,
            }),
            pool_size: pool_size as u64,
            crash_at,
        }
    }

    /// Number of injection points encountered so far.
    pub(crate) fn points_seen(&self) -> usize {
        self.inner.borrow().points_seen
    }

    /// The end-of-execution injection point.
    pub(crate) fn end_point(&self) {
        let any = self.inner.borrow().any_writes;
        if any {
            self.offer_point();
        }
    }

    /// Freezes the machine as crashed (buffered operations lost).
    pub(crate) fn into_storage(self) -> ExecutionStorage {
        self.inner.into_inner().machine.crash()
    }

    fn offer_point(&self) {
        let mut inner = self.inner.borrow_mut();
        let idx = inner.points_seen;
        inner.points_seen += 1;
        inner.writes_since_point = false;
        if self.crash_at == Some(idx) {
            drop(inner);
            panic_any(YatCrash);
        }
    }

    fn flush_point(&self) {
        let eligible = self.inner.borrow().writes_since_point;
        if eligible {
            self.offer_point();
        }
    }

    fn tick(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.ops += 1;
        if inner.ops > MAX_OPS {
            drop(inner);
            panic_any(YatBugSignal(
                "infinite loop in pre-failure execution".into(),
            ));
        }
    }

    fn check_range(&self, addr: PmAddr, len: usize) {
        let end = addr.offset().checked_add(len as u64);
        if addr.offset() < NULL_PAGE_SIZE || !matches!(end, Some(e) if e <= self.pool_size) {
            panic_any(YatBugSignal(format!(
                "illegal access: {len} bytes at {addr}"
            )));
        }
    }

    fn flush_lines(&self, addr: PmAddr, len: usize, opt: bool) {
        self.flush_point();
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        let first = addr.cache_line().index();
        let last = (addr + (len.max(1) as u64 - 1)).cache_line().index();
        for l in first..=last {
            let line = CacheLineId::new(l);
            if opt {
                inner.machine.clflushopt(inner.current_tid, line);
            } else {
                inner.machine.clflush(inner.current_tid, line);
            }
        }
    }
}

impl PmEnv for PreFailureEnv {
    fn load_bytes(&self, addr: PmAddr, buf: &mut [u8]) {
        self.tick();
        self.check_range(addr, buf.len());
        let inner = self.inner.borrow();
        for (i, slot) in buf.iter_mut().enumerate() {
            *slot = match inner
                .machine
                .read_current(inner.current_tid, addr + i as u64)
            {
                CurrentRead::Buffered(v) | CurrentRead::Cached(v) => v,
                CurrentRead::Miss => 0,
            };
        }
    }

    #[track_caller]
    fn store_bytes(&self, addr: PmAddr, bytes: &[u8]) {
        self.tick();
        self.check_range(addr, bytes.len());
        let loc = std::panic::Location::caller();
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        inner.machine.store(inner.current_tid, addr, bytes, loc);
        inner.writes_since_point = true;
        inner.any_writes = true;
    }

    fn clflush(&self, addr: PmAddr, len: usize) {
        self.tick();
        self.check_range(addr, len.max(1));
        self.flush_lines(addr, len, false);
    }

    fn clflushopt(&self, addr: PmAddr, len: usize) {
        self.tick();
        self.check_range(addr, len.max(1));
        self.flush_lines(addr, len, true);
    }

    fn sfence(&self) {
        self.tick();
        let pending = {
            let inner = self.inner.borrow();
            inner.machine.flush_buffer_pending(inner.current_tid)
        };
        if pending {
            self.flush_point();
        }
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        inner.machine.sfence(inner.current_tid);
        inner.machine.drain_store_buffer(inner.current_tid);
    }

    fn mfence(&self) {
        self.tick();
        let pending = {
            let inner = self.inner.borrow();
            inner.machine.flush_buffer_pending(inner.current_tid)
        };
        if pending {
            self.flush_point();
        }
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        inner.machine.mfence(inner.current_tid);
    }

    #[track_caller]
    fn compare_exchange_u64(&self, addr: PmAddr, current: u64, new: u64) -> u64 {
        self.mfence();
        let observed = self.load_u64(addr);
        if observed == current {
            self.store_bytes(addr, &new.to_le_bytes());
        }
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        inner.machine.mfence(inner.current_tid);
        observed
    }

    fn pm_alloc(&self, size: u64, align: u64) -> PmAddr {
        self.tick();
        let mut inner = self.inner.borrow_mut();
        let base = PmAddr::new(inner.bump).align_up(align);
        match base.offset().checked_add(size) {
            Some(end) if end <= self.pool_size => {
                inner.bump = end;
                base
            }
            _ => panic_any(YatBugSignal(format!("pm_alloc({size}) exhausted pool"))),
        }
    }

    fn root(&self) -> PmAddr {
        PmAddr::new(NULL_PAGE_SIZE)
    }

    fn pool_size(&self) -> u64 {
        self.pool_size
    }

    fn execution_index(&self) -> usize {
        0
    }

    fn bug(&self, msg: &str) -> ! {
        panic_any(YatBugSignal(msg.to_string()))
    }

    fn spawn(&self, body: &mut dyn FnMut(&dyn PmEnv)) {
        let old = {
            let mut inner = self.inner.borrow_mut();
            let old = inner.current_tid;
            inner.current_tid = ThreadId(inner.next_tid);
            inner.next_tid += 1;
            old
        };
        body(self);
        self.inner.borrow_mut().current_tid = old;
    }
}

/// A concrete post-failure environment: recovery runs against one
/// materialized persistent-memory state, with no further nondeterminism
/// and no further failures (Yat explores single-failure scenarios).
pub(crate) struct ConcreteEnv {
    pool: RefCell<PmPool>,
    bump: RefCell<u64>,
    ops: RefCell<u64>,
}

impl ConcreteEnv {
    pub(crate) fn new(pool: PmPool) -> Self {
        ConcreteEnv {
            pool: RefCell::new(pool),
            bump: RefCell::new(2 * CACHE_LINE_SIZE as u64),
            ops: RefCell::new(0),
        }
    }

    fn tick(&self) {
        let mut ops = self.ops.borrow_mut();
        *ops += 1;
        if *ops > MAX_OPS {
            drop(ops);
            panic_any(YatBugSignal("infinite loop in recovery execution".into()));
        }
    }
}

impl PmEnv for ConcreteEnv {
    fn load_bytes(&self, addr: PmAddr, buf: &mut [u8]) {
        self.tick();
        if let Err(e) = self.pool.borrow().read(addr, buf) {
            panic_any(YatBugSignal(e.to_string()));
        }
    }

    fn store_bytes(&self, addr: PmAddr, bytes: &[u8]) {
        self.tick();
        if let Err(e) = self.pool.borrow_mut().write(addr, bytes) {
            panic_any(YatBugSignal(e.to_string()));
        }
    }

    fn clflush(&self, _addr: PmAddr, _len: usize) {
        self.tick();
    }

    fn clflushopt(&self, _addr: PmAddr, _len: usize) {
        self.tick();
    }

    fn sfence(&self) {
        self.tick();
    }

    fn mfence(&self) {
        self.tick();
    }

    fn compare_exchange_u64(&self, addr: PmAddr, current: u64, new: u64) -> u64 {
        let observed = self.load_u64(addr);
        if observed == current {
            self.store_u64(addr, new);
        }
        observed
    }

    fn pm_alloc(&self, size: u64, align: u64) -> PmAddr {
        self.tick();
        let mut bump = self.bump.borrow_mut();
        let base = PmAddr::new(*bump).align_up(align);
        match base.offset().checked_add(size) {
            Some(end) if end <= self.pool.borrow().size() => {
                *bump = end;
                base
            }
            _ => panic_any(YatBugSignal(format!("pm_alloc({size}) exhausted pool"))),
        }
    }

    fn root(&self) -> PmAddr {
        PmAddr::new(NULL_PAGE_SIZE)
    }

    fn pool_size(&self) -> u64 {
        self.pool.borrow().size()
    }

    fn execution_index(&self) -> usize {
        1
    }

    fn bug(&self, msg: &str) -> ! {
        panic_any(YatBugSignal(msg.to_string()))
    }

    fn spawn(&self, body: &mut dyn FnMut(&dyn PmEnv)) {
        body(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn pre_failure_env_counts_points_like_jaaru() {
        let env = PreFailureEnv::new(4096, None);
        let a = env.root();
        env.store_u64(a, 1);
        env.clflush(a, 8); // point 0
        env.clflush(a, 8); // skipped: no writes since point 0
        env.store_u64(a, 2);
        env.clflush(a, 8); // point 1
        env.end_point(); // point 2
        assert_eq!(env.points_seen(), 3);
    }

    #[test]
    fn crash_at_designated_point() {
        let env = PreFailureEnv::new(4096, Some(1));
        let a = env.root();
        let err = catch_unwind(AssertUnwindSafe(|| {
            env.store_u64(a, 1);
            env.clflush(a, 8); // point 0: continue
            env.store_u64(a, 2);
            env.clflush(a, 8); // point 1: crash
            unreachable!("crashed above");
        }))
        .unwrap_err();
        assert!(err.is::<YatCrash>());
        let storage = env.into_storage();
        // The second store executed before the crash (Eager eviction) but
        // the second clflush did not.
        assert_eq!(storage.queue(a).len(), 2);
    }

    #[test]
    fn concrete_env_is_plain_memory() {
        let pool = PmPool::new(4096);
        let env = ConcreteEnv::new(pool);
        let a = env.root();
        assert_eq!(env.load_u64(a), 0);
        env.store_u64(a, 9);
        assert_eq!(env.load_u64(a), 9);
        assert!(env.is_recovery());
    }

    #[test]
    fn concrete_env_reports_illegal_access() {
        let env = ConcreteEnv::new(PmPool::new(4096));
        let err = catch_unwind(AssertUnwindSafe(|| env.load_u8(PmAddr::NULL))).unwrap_err();
        let sig = err.downcast::<YatBugSignal>().expect("bug signal");
        assert!(sig.0.contains("null page"));
    }
}
