//! The eager (Yat-style) model checking algorithm.
//!
//! Yat enumerates, at each failure point, *every* legal post-failure
//! memory state — the cartesian product over cache lines of candidate
//! last-writeback points — and runs the recovery code against each
//! materialized state. This is exhaustive but exponential in the number
//! of unflushed stores; the paper uses it as the baseline that Jaaru's
//! constraint refinement beats by orders of magnitude (Figure 14).

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use jaaru::{PmPool, Program};
use jaaru_pmem::CacheLineId;
use jaaru_tso::{ExecutionStorage, Seq};

use crate::env::{ConcreteEnv, PreFailureEnv, YatBugSignal, YatCrash};
use crate::StateCount;

/// Configuration for the eager baseline.
#[derive(Clone, Debug)]
pub struct YatConfig {
    /// Pool size in bytes.
    pub pool_size: usize,
    /// Stop materializing states after this many total executions
    /// (protection against the exponential blow-up the baseline is
    /// designed to demonstrate).
    pub max_states: u64,
}

impl YatConfig {
    /// Defaults: 1 MiB pool, 1,000,000-state exploration cap.
    pub fn new() -> Self {
        YatConfig {
            pool_size: 1 << 20,
            max_states: 1_000_000,
        }
    }
}

impl Default for YatConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Errors from bounded eager exploration.
///
/// Eager enumeration is exponential by design; callers that need a
/// *complete* eager answer (the differential fuzzing oracle, for one)
/// must know when the budget cut exploration short rather than silently
/// comparing against a truncated state set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum YatError {
    /// The configured [`YatConfig::max_states`] budget was reached before
    /// the state space was exhausted.
    StateBudgetExceeded {
        /// The budget that was exceeded.
        budget: u64,
        /// The failure point whose state space blew the budget.
        failure_point: usize,
    },
}

impl fmt::Display for YatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            YatError::StateBudgetExceeded {
                budget,
                failure_point,
            } => write!(
                f,
                "eager state budget of {budget} states exceeded at failure point {failure_point}"
            ),
        }
    }
}

impl std::error::Error for YatError {}

/// A bug found by eager exploration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct YatBug {
    /// Description (panic/abort message from the recovery execution).
    pub message: String,
    /// Failure injection point whose state space exposed the bug.
    pub failure_point: usize,
}

/// Result of an eager check.
#[derive(Clone, Debug, Default)]
pub struct YatReport {
    /// Distinct bugs, in discovery order.
    pub bugs: Vec<YatBug>,
    /// Post-failure states actually materialized and executed.
    pub states_explored: u64,
    /// Failure injection points in the pre-failure execution.
    pub failure_points: usize,
    /// Whether the state cap truncated exploration.
    pub truncated: bool,
    /// Wall-clock time.
    pub duration: Duration,
}

impl YatReport {
    /// `true` when no bug was found.
    pub fn is_clean(&self) -> bool {
        self.bugs.is_empty()
    }
}

/// Runs the pre-failure execution, crashing at `crash_at` (or completing).
/// Returns the environment for inspection, or a bug message if the
/// pre-failure execution itself misbehaved.
fn run_pre_failure(
    program: &dyn Program,
    pool_size: usize,
    crash_at: Option<usize>,
) -> Result<PreFailureEnv, String> {
    let env = PreFailureEnv::new(pool_size, crash_at);
    let outcome = jaaru::with_quiet_panics(|| {
        catch_unwind(AssertUnwindSafe(|| {
            program.run(&env);
            env.end_point();
        }))
    });
    match outcome {
        Ok(()) => Ok(env),
        Err(p) if p.is::<YatCrash>() => Ok(env),
        Err(p) => match p.downcast::<YatBugSignal>() {
            Ok(sig) => Err(sig.0),
            Err(p) => Err(crate::panic_text(p.as_ref())),
        },
    }
}

/// The per-line writeback choices for a crashed execution: every touched
/// line paired with its candidate last-writeback positions.
fn line_choices(storage: &ExecutionStorage) -> Vec<(CacheLineId, Vec<Seq>)> {
    let mut lines: Vec<CacheLineId> = storage.touched_lines().collect();
    lines.sort();
    lines
        .into_iter()
        .map(|l| (l, storage.writeback_points(l)))
        .collect()
}

/// Number of distinct post-failure states of a crashed execution.
fn state_count(storage: &ExecutionStorage) -> StateCount {
    line_choices(storage)
        .iter()
        .map(|(_, pts)| StateCount::from_u64(pts.len() as u64))
        .fold(StateCount::ONE, |a, b| a * b)
}

/// Materializes the post-failure pool for one combination of per-line
/// writeback points.
fn materialize(
    storage: &ExecutionStorage,
    choices: &[(CacheLineId, Vec<Seq>)],
    odometer: &[usize],
    pool_size: usize,
) -> PmPool {
    let mut pool = PmPool::new(pool_size);
    for ((line, points), &idx) in choices.iter().zip(odometer) {
        let w = points[idx];
        for addr in line.bytes() {
            if let Some(v) = storage.snapshot_value(addr, w) {
                pool.write_u8(addr, v)
                    .expect("touched addresses are in bounds");
            }
        }
    }
    pool
}

/// Advances the odometer; returns `false` after the last combination.
fn advance(odometer: &mut [usize], choices: &[(CacheLineId, Vec<Seq>)]) -> bool {
    for (slot, (_, points)) in odometer.iter_mut().zip(choices) {
        *slot += 1;
        if *slot < points.len() {
            return true;
        }
        *slot = 0;
    }
    false
}

/// Eagerly model checks `program`: for every failure injection point,
/// enumerates every legal post-failure state and runs recovery against it.
///
/// # Example
///
/// ```
/// use jaaru::PmEnv;
/// use jaaru_yat::{eager_check, YatConfig};
///
/// let program = |env: &dyn PmEnv| {
///     let root = env.root();
///     if env.is_recovery() {
///         let v = env.load_u64(root);
///         env.pm_assert(v == 0 || v == 5, "corrupt");
///         return;
///     }
///     env.store_u64(root, 5);
///     env.persist(root, 8);
/// };
/// let mut config = YatConfig::new();
/// config.pool_size = 4096;
/// let report = eager_check(&program, &config);
/// assert!(report.is_clean());
/// assert!(report.states_explored >= 2);
/// ```
pub fn eager_check(program: &dyn Program, config: &YatConfig) -> YatReport {
    match eager_check_impl(program, config, false) {
        Ok(report) => report,
        Err(e) => unreachable!("unbounded eager check cannot fail: {e}"),
    }
}

/// Like [`eager_check`], but treats the state budget as a hard error:
/// exceeding [`YatConfig::max_states`] returns
/// [`YatError::StateBudgetExceeded`] instead of a truncated report.
///
/// This is the guard rail the differential fuzzing oracle relies on —
/// an eager run is only comparable to the lazy checker when it actually
/// enumerated *every* post-failure state, so partial enumerations must
/// be unmistakable, not a flag callers can forget to check.
///
/// # Example
///
/// ```
/// use jaaru::PmEnv;
/// use jaaru_yat::{eager_check_bounded, YatConfig, YatError};
///
/// let program = |env: &dyn PmEnv| {
///     if env.is_recovery() {
///         return;
///     }
///     let base = env.root();
///     for line in 0..8u64 {
///         for slot in 0..8u64 {
///             env.store_u64(base + line * 64 + slot * 8, slot + 1);
///         }
///     }
///     env.clflush(base, 512);
///     env.sfence();
/// };
/// let mut config = YatConfig::new();
/// config.pool_size = 4096;
/// config.max_states = 1000; // far below the 9^8 states required
/// let err = eager_check_bounded(&program, &config).unwrap_err();
/// assert!(matches!(err, YatError::StateBudgetExceeded { budget: 1000, .. }));
/// ```
pub fn eager_check_bounded(
    program: &dyn Program,
    config: &YatConfig,
) -> Result<YatReport, YatError> {
    eager_check_impl(program, config, true)
}

fn eager_check_impl(
    program: &dyn Program,
    config: &YatConfig,
    budget_is_error: bool,
) -> Result<YatReport, YatError> {
    let start = Instant::now();
    let mut report = YatReport::default();

    // Discover the injection points (and any plain functional bug).
    let probe = match run_pre_failure(program, config.pool_size, None) {
        Ok(env) => env,
        Err(message) => {
            report.bugs.push(YatBug {
                message,
                failure_point: usize::MAX,
            });
            report.duration = start.elapsed();
            return Ok(report);
        }
    };
    report.failure_points = probe.points_seen();

    'points: for point in 0..report.failure_points {
        let env = match run_pre_failure(program, config.pool_size, Some(point)) {
            Ok(env) => env,
            Err(message) => {
                push_bug(&mut report.bugs, message, point);
                continue;
            }
        };
        let storage = env.into_storage();
        let choices = line_choices(&storage);
        let mut odometer = vec![0usize; choices.len()];
        loop {
            if report.states_explored >= config.max_states {
                if budget_is_error {
                    return Err(YatError::StateBudgetExceeded {
                        budget: config.max_states,
                        failure_point: point,
                    });
                }
                report.truncated = true;
                break 'points;
            }
            report.states_explored += 1;
            let pool = materialize(&storage, &choices, &odometer, config.pool_size);
            let recovery = ConcreteEnv::new(pool);
            let outcome = jaaru::with_quiet_panics(|| {
                catch_unwind(AssertUnwindSafe(|| program.run(&recovery)))
            });
            if let Err(p) = outcome {
                let message = match p.downcast::<YatBugSignal>() {
                    Ok(sig) => sig.0,
                    Err(p) => crate::panic_text(p.as_ref()),
                };
                push_bug(&mut report.bugs, message, point);
            }
            if !advance(&mut odometer, &choices) {
                break;
            }
        }
    }

    report.duration = start.elapsed();
    Ok(report)
}

fn push_bug(bugs: &mut Vec<YatBug>, message: String, failure_point: usize) {
    if !bugs.iter().any(|b| b.message == message) {
        bugs.push(YatBug {
            message,
            failure_point,
        });
    }
}

/// Computes, without materializing anything, the number of post-failure
/// states Yat would have to explore for `program`: the sum over failure
/// points of the per-point state-space size. This regenerates the
/// `#Yat Execs.` column of Figure 14.
///
/// Returns the count and the number of failure points.
pub fn count_states(program: &dyn Program, config: &YatConfig) -> (StateCount, usize) {
    let probe = match run_pre_failure(program, config.pool_size, None) {
        Ok(env) => env,
        Err(_) => return (StateCount::ZERO, 0),
    };
    let points = probe.points_seen();
    let mut total = StateCount::ZERO;
    for point in 0..points {
        if let Ok(env) = run_pre_failure(program, config.pool_size, Some(point)) {
            total = total + state_count(&env.into_storage());
        }
    }
    (total, points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jaaru::PmEnv;

    fn config() -> YatConfig {
        YatConfig {
            pool_size: 4096,
            max_states: 100_000,
        }
    }

    #[test]
    fn clean_program_explores_all_states_quietly() {
        let program = |env: &dyn PmEnv| {
            let root = env.root();
            if env.is_recovery() {
                let v = env.load_u64(root);
                env.pm_assert(v == 0 || v == 5, "corrupt");
                return;
            }
            env.store_u64(root, 5);
            env.persist(root, 8);
        };
        let report = eager_check(&program, &config());
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.failure_points, 2, "flush + end");
        // Point 0 (before clflush): states = {initial, 5} = 2.
        // Point 1 (end): flush landed → the single post-flush state... the
        // flush pins begin, no stores after it → 1 state. Total 3.
        assert_eq!(report.states_explored, 3);
    }

    #[test]
    fn missing_flush_bug_is_found_eagerly() {
        let program = |env: &dyn PmEnv| {
            let root = env.root();
            let data = root + 64;
            if env.load_u64(root) != 0 {
                env.pm_assert(env.load_u64(data) == 42, "lost committed data");
                return;
            }
            env.store_u64(data, 42);
            // BUG: data never flushed.
            env.store_u64(root, 1);
            env.persist(root, 8);
        };
        let report = eager_check(&program, &config());
        assert_eq!(report.bugs.len(), 1, "{report:?}");
        assert!(report.bugs[0].message.contains("lost committed data"));
    }

    #[test]
    fn exponential_state_growth_is_counted() {
        // The paper's §1 example: initialize n cache-line-resident u64s
        // and crash before flushing. Each line holds 8 stores → 9 states.
        let n_lines = 4u64;
        let program = move |env: &dyn PmEnv| {
            let base = env.root();
            if env.is_recovery() {
                return;
            }
            for line in 0..n_lines {
                for slot in 0..8u64 {
                    env.store_u64(base + line * 64 + slot * 8, slot + 1);
                }
            }
            env.clflush(base, (n_lines * 64) as usize);
            env.sfence();
        };
        let (count, points) = count_states(&program, &config());
        assert_eq!(points, 2);
        // Point 0: 9^4 states; point 1 (end, all flushed): 1 state.
        assert_eq!(count.as_u64(), Some(9u64.pow(4) + 1));
    }

    #[test]
    fn state_cap_truncates() {
        let program = |env: &dyn PmEnv| {
            if env.is_recovery() {
                return;
            }
            let base = env.root();
            for line in 0..8u64 {
                for slot in 0..8u64 {
                    env.store_u64(base + line * 64 + slot * 8, slot + 1);
                }
            }
            env.clflush(base, 512);
            env.sfence();
        };
        let mut cfg = config();
        cfg.max_states = 1000;
        let report = eager_check(&program, &cfg);
        assert!(report.truncated);
        assert_eq!(report.states_explored, 1000);
    }

    #[test]
    fn bounded_check_errors_instead_of_truncating() {
        let program = |env: &dyn PmEnv| {
            if env.is_recovery() {
                return;
            }
            let base = env.root();
            for line in 0..8u64 {
                for slot in 0..8u64 {
                    env.store_u64(base + line * 64 + slot * 8, slot + 1);
                }
            }
            env.clflush(base, 512);
            env.sfence();
        };
        let mut cfg = config();
        cfg.max_states = 1000;
        let err = eager_check_bounded(&program, &cfg).unwrap_err();
        assert_eq!(
            err,
            YatError::StateBudgetExceeded {
                budget: 1000,
                failure_point: 0
            }
        );
        assert!(err.to_string().contains("budget of 1000"));
    }

    #[test]
    fn bounded_check_matches_unbounded_within_budget() {
        let program = |env: &dyn PmEnv| {
            let root = env.root();
            if env.is_recovery() {
                let v = env.load_u64(root);
                env.pm_assert(v == 0 || v == 5, "corrupt");
                return;
            }
            env.store_u64(root, 5);
            env.persist(root, 8);
        };
        let bounded = eager_check_bounded(&program, &config()).expect("within budget");
        let unbounded = eager_check(&program, &config());
        assert_eq!(bounded.states_explored, unbounded.states_explored);
        assert_eq!(bounded.bugs, unbounded.bugs);
        assert!(!bounded.truncated);
    }

    #[test]
    fn functional_bug_in_pre_failure_is_reported() {
        let program = |env: &dyn PmEnv| {
            env.bug("broken before any failure");
        };
        let report = eager_check(&program, &config());
        assert_eq!(report.bugs.len(), 1);
        assert_eq!(report.failure_points, 0);
    }

    #[test]
    fn torn_state_enumeration_matches_snapshots() {
        // Two stores to the same line, unflushed: states are 0-0, 1-0, 1-1
        // (prefix-closed, never 0-1).
        let program = |env: &dyn PmEnv| {
            let root = env.root();
            if env.is_recovery() {
                let lo = env.load_u8(root);
                let hi = env.load_u8(root + 1);
                env.pm_assert(!(lo == 0 && hi == 1), "non-prefix state materialized");
                return;
            }
            env.store_u8(root, 1);
            env.store_u8(root + 1, 1);
            env.clflush(root, 2);
            env.sfence();
        };
        let report = eager_check(&program, &config());
        assert!(report.is_clean(), "{report:?}");
        // Point 0: 3 states; point 1 (end): 1 state.
        assert_eq!(report.states_explored, 4);
    }
}
