//! Yat-style eager baseline for persistent-memory model checking.
//!
//! Yat (Lantz et al., USENIX ATC '14) validates PM software by
//! enumerating, at every failure point, *all* legal post-failure memory
//! states before running the recovery code. The Jaaru paper uses Yat as
//! the baseline its constraint-refinement approach beats by many orders
//! of magnitude (Figure 14). Yat itself is not publicly available; like
//! the paper, this crate provides
//!
//! * a working eager enumerator for programs whose state spaces are small
//!   enough to explore ([`eager_check`]) — used by the differential
//!   property tests that validate Jaaru's "no false positives or
//!   negatives" claim, and
//! * an analytic state counter ([`count_states`]) that computes the
//!   number of executions Yat *would* need without running them —
//!   exactly how the paper produced numbers like `1.93×10^605`
//!   ([`StateCount`] keeps them in log space).
//!
//! # Example
//!
//! ```
//! use jaaru::PmEnv;
//! use jaaru_yat::{count_states, YatConfig};
//!
//! // Initialize 16 u64 slots (2 cache lines) and crash before the flush:
//! // Yat must enumerate 9^2 states for that point.
//! let program = |env: &dyn PmEnv| {
//!     if env.is_recovery() {
//!         return;
//!     }
//!     let base = env.root();
//!     for i in 0..16u64 {
//!         env.store_u64(base + i * 8, i + 1);
//!     }
//!     env.clflush(base, 128);
//!     env.sfence();
//! };
//! let mut config = YatConfig::new();
//! config.pool_size = 4096;
//! let (count, points) = count_states(&program, &config);
//! assert_eq!(points, 2);
//! assert_eq!(count.as_u64(), Some(9 * 9 + 1));
//! ```

mod checker;
mod count;
mod env;

pub use checker::{
    count_states, eager_check, eager_check_bounded, YatBug, YatConfig, YatError, YatReport,
};
pub use count::StateCount;

/// Extracts readable text from a panic payload (shared helper).
pub(crate) fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
