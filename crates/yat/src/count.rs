//! Astronomically large state counts, kept in log space.
//!
//! Yat's eager exploration must visit every legal post-failure memory
//! state; for realistic programs the paper reports counts up to
//! `1.93×10^605` (Figure 14), far beyond `u64` and even `f64` range.
//! [`StateCount`] stores `log10` of the count and renders it the way the
//! paper's table does (`2.17e182`).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, Mul};

/// A non-negative count held as `log10(count)`.
///
/// # Example
///
/// ```
/// use jaaru_yat::StateCount;
///
/// let per_line = StateCount::from_u64(9);
/// // 9 states per cache line, 100 independent lines:
/// let total = per_line.pow(100);
/// assert_eq!(total.to_string(), "2.66e95");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct StateCount {
    log10: f64,
}

impl StateCount {
    /// The count 1 (the multiplicative identity: an empty product of
    /// per-line state counts).
    pub const ONE: StateCount = StateCount { log10: 0.0 };

    /// The count 0 (the additive identity).
    pub const ZERO: StateCount = StateCount {
        log10: f64::NEG_INFINITY,
    };

    /// Creates a count from an exact integer.
    pub fn from_u64(n: u64) -> Self {
        if n == 0 {
            Self::ZERO
        } else {
            StateCount {
                log10: (n as f64).log10(),
            }
        }
    }

    /// `log10` of the count (`-inf` for zero).
    pub fn log10(self) -> f64 {
        self.log10
    }

    /// Raises the count to an integer power (independent lines multiply).
    pub fn pow(self, exp: u32) -> Self {
        StateCount {
            log10: self.log10 * f64::from(exp),
        }
    }

    /// The count as a `u64` if it fits exactly enough to be meaningful.
    pub fn as_u64(self) -> Option<u64> {
        if self == Self::ZERO {
            return Some(0);
        }
        (self.log10 < 18.0).then(|| 10f64.powf(self.log10).round() as u64)
    }
}

impl Add for StateCount {
    type Output = StateCount;

    /// Log-space addition (`logsumexp` base 10): totals across failure
    /// points add.
    fn add(self, rhs: StateCount) -> StateCount {
        if self == Self::ZERO {
            return rhs;
        }
        if rhs == Self::ZERO {
            return self;
        }
        let (hi, lo) = if self.log10 >= rhs.log10 {
            (self, rhs)
        } else {
            (rhs, self)
        };
        StateCount {
            log10: hi.log10 + (1.0 + 10f64.powf(lo.log10 - hi.log10)).log10(),
        }
    }
}

impl Mul for StateCount {
    type Output = StateCount;

    /// Counts of independent choices multiply.
    fn mul(self, rhs: StateCount) -> StateCount {
        if self == Self::ZERO || rhs == Self::ZERO {
            return Self::ZERO;
        }
        StateCount {
            log10: self.log10 + rhs.log10,
        }
    }
}

impl Sum for StateCount {
    fn sum<I: Iterator<Item = StateCount>>(iter: I) -> StateCount {
        iter.fold(StateCount::ZERO, Add::add)
    }
}

impl fmt::Display for StateCount {
    /// Renders like the paper's Figure 14: `2.17e182`, or the plain
    /// integer when small.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Self::ZERO {
            return write!(f, "0");
        }
        if let Some(n) = self.as_u64() {
            if n < 1_000_000 {
                return write!(f, "{n}");
            }
        }
        let exp = self.log10.floor();
        let mantissa = 10f64.powf(self.log10 - exp);
        write!(f, "{mantissa:.2}e{exp:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_counts() {
        assert_eq!(StateCount::from_u64(0).to_string(), "0");
        assert_eq!(StateCount::from_u64(1).to_string(), "1");
        assert_eq!(StateCount::from_u64(9).to_string(), "9");
        assert_eq!(StateCount::from_u64(0).as_u64(), Some(0));
        assert_eq!(StateCount::from_u64(123_456).as_u64(), Some(123_456));
    }

    #[test]
    fn multiplication_is_exact_in_log_space() {
        let a = StateCount::from_u64(9);
        let b = StateCount::from_u64(81);
        assert_eq!((a * a).to_string(), b.to_string());
        assert_eq!((a * StateCount::ONE).as_u64(), Some(9));
        assert_eq!((a * StateCount::ZERO).to_string(), "0");
    }

    #[test]
    fn addition_is_logsumexp() {
        let a = StateCount::from_u64(1000);
        let b = StateCount::from_u64(24);
        assert_eq!((a + b).as_u64(), Some(1024));
        assert_eq!((StateCount::ZERO + b).as_u64(), Some(24));
        assert_eq!((b + StateCount::ZERO).as_u64(), Some(24));
    }

    #[test]
    fn paper_scale_counts_do_not_overflow() {
        // P-CLHT in Figure 14 needs 1.93×10^605 — representable only in
        // log space. 9^636 ≈ 6.6×10^606 is the same order.
        let direct = StateCount::from_u64(9).pow(636);
        assert!(direct.log10().is_finite());
        assert!(direct.log10() > 600.0);
        assert!(direct.to_string().contains('e'));
    }

    #[test]
    fn sum_over_iterator() {
        let total: StateCount = (1..=4u64).map(StateCount::from_u64).sum();
        assert_eq!(total.as_u64(), Some(10));
    }

    #[test]
    fn intro_example_nine_to_the_n_over_eight() {
        // §1: an array of n 64-bit integers spans n/8 lines with 9 states
        // each. For n = 64: 9^8 = 43,046,721.
        let n = StateCount::from_u64(9).pow(8);
        assert_eq!(n.as_u64(), Some(43_046_721));
    }
}
