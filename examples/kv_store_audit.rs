//! Auditing a persistent key-value library before release — the paper's
//! headline use case ("the best use case for Jaaru is to exhaustively
//! check widely-used libraries such as PMDK, finding as many potential
//! bugs as possible before their release").
//!
//! The audit sweeps the CCEH hash table (RECIPE) through its fixed
//! configuration and all three seeded constructor faults, and the
//! mini-PMDK hashmap examples through their allocator and transaction
//! faults, printing a short verdict for each.
//!
//! Run with: `cargo run --release -p jaaru-examples --example kv_store_audit`

use jaaru::{CheckReport, Config, ModelChecker, Program};
use jaaru_workloads::pmdk::{hashmap_atomic, hashmap_tx, MapWorkload, PmdkFaults};
use jaaru_workloads::recipe::cceh::{Cceh, CcehFault};
use jaaru_workloads::recipe::IndexWorkload;

fn audit(name: &str, program: &(dyn Program + Sync)) -> CheckReport {
    let mut config = Config::new();
    config
        .pool_size(1 << 18)
        .max_ops_per_execution(20_000)
        .max_scenarios(5_000);
    let report = ModelChecker::new(config).check(program);
    let verdict = if report.is_clean() { "clean" } else { "BUGGY" };
    println!("{name:<44} {verdict:>6}  ({})", report.summary());
    for bug in &report.bugs {
        println!("    -> {bug}");
    }
    report
}

fn main() {
    println!("Crash-consistency audit, CCEH build matrix:");
    let clean = audit("CCEH (fixed)", &IndexWorkload::<Cceh>::fixed(6));
    assert!(clean.is_clean());
    for (label, fault) in [
        (
            "CCEH (directory header not flushed)",
            CcehFault::CtorDirectoryHeaderNotFlushed,
        ),
        (
            "CCEH (directory entries not flushed)",
            CcehFault::CtorDirectoryEntriesNotFlushed,
        ),
        (
            "CCEH (root pointer not flushed)",
            CcehFault::CtorRootNotFlushed,
        ),
    ] {
        let report = audit(label, &IndexWorkload::<Cceh>::new(fault, 4));
        assert!(!report.is_clean());
    }

    println!("\nCrash-consistency audit, mini-PMDK hashmaps:");
    let clean = audit(
        "hashmap_atomic (fixed)",
        &MapWorkload::<hashmap_atomic::HashmapAtomic>::new(PmdkFaults::default(), 5),
    );
    assert!(clean.is_clean());
    let report = audit(
        "hashmap_atomic (allocator cursor unflushed)",
        &MapWorkload::<hashmap_atomic::HashmapAtomic>::new(hashmap_atomic::bug5_faults(), 4),
    );
    assert!(!report.is_clean());
    let report = audit(
        "hashmap_tx (undo-log entry unflushed)",
        &MapWorkload::<hashmap_tx::HashmapTx>::new(hashmap_tx::bug6_faults(), 4),
    );
    assert!(!report.is_clean());

    println!("\nAudit complete: every seeded fault was exposed, every fixed build is clean.");
}
