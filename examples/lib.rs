//! Runnable examples for the Jaaru reproduction (see the `examples/`
//! binaries: `quickstart`, `persistent_log`, `kv_store_audit`,
//! `debug_missing_flush`). This library target exists only to anchor the
//! example binaries in the workspace.
