//! Quickstart: model check the paper's Figure 4 commit-store program.
//!
//! `addChild` persists a child node and then a commit pointer;
//! `readChild` trusts the pointer. The correct version is crash
//! consistent; removing the first flush lets recovery read committed
//! state whose data never persisted — Jaaru finds it and explains which
//! stores the racy load could observe.
//!
//! Run with: `cargo run -p jaaru-examples --example quickstart`

use jaaru::{Config, ModelChecker, PmEnv};

fn add_child_read_child(with_data_flush: bool) -> impl jaaru::Program {
    move |env: &dyn PmEnv| {
        let child_ptr = env.root(); // ptr->child (the commit store)
        let child = child_ptr + 64; // the child node, its own cache line

        if env.is_recovery() {
            // readChild (Figure 4, lines 9-14)
            let p = env.load_addr(child_ptr);
            if !p.is_null() {
                let data = env.load_u64(p);
                env.pm_assert(data == 42, "committed child data lost");
            }
            return;
        }

        // addChild (Figure 4, lines 1-7)
        env.store_u64(child, 42); // tmp->data = data
        if with_data_flush {
            env.clflush(child, 8); // clflush(tmp, sizeof(childNode))
        }
        env.store_addr(child_ptr, child); // ptr->child = tmp
        env.clflush(child_ptr, 8); // clflush(&ptr->child, ...)
        env.sfence();
    }
}

fn main() {
    let mut config = Config::new();
    config.pool_size(1 << 16);

    println!("== Correct commit-store program (Figure 4) ==");
    let report = ModelChecker::new(config.clone()).check(&add_child_read_child(true));
    println!("{report}");
    assert!(report.is_clean());
    println!(
        "Explored {} failure scenarios over {} injection points — the clean run\n\
         plus the 1 + 2 + 1 post-failure executions of the paper's walkthrough.\n",
        report.stats.scenarios, report.stats.failure_points
    );

    println!("== Same program with the child-node flush removed ==");
    let report = ModelChecker::new(config).check(&add_child_read_child(false));
    println!("{report}");
    assert!(!report.is_clean());
    for race in &report.races {
        println!("{race}");
    }
    println!(
        "The bug report's decision trace {:?} reproduces the failing scenario.",
        report.bugs[0].trace
    );
}
