//! The paper's §4 debugging support in action: when a load can read from
//! more than one pre-failure store, Jaaru prints the load, its source
//! location, and every candidate store with *its* source location —
//! "very useful for quickly understanding missing flush instructions".
//!
//! The program below persists a three-field record but forgets to flush
//! one field. The checker finds the resulting assertion failure, and the
//! race report points at the exact store that was never made persistent.
//!
//! Run with: `cargo run -p jaaru-examples --example debug_missing_flush`

use jaaru::{Config, ModelChecker, PmEnv};

fn record_writer(env: &dyn PmEnv) {
    let commit = env.root();
    let name = commit + 64; // field A, own line
    let balance = commit + 128; // field B, own line
    let nonce = commit + 192; // field C, own line

    if env.load_u64(commit) == 1 {
        // Recovery: the commit flag promises the whole record.
        let a = env.load_u64(name);
        let b = env.load_u64(balance);
        let c = env.load_u64(nonce);
        env.pm_assert(
            a == 0xa11ce && b == 1_000 && c == 0x5eed,
            "committed record has a torn field",
        );
        return;
    }

    env.store_u64(name, 0xa11ce);
    env.clflush(name, 8);
    env.store_u64(balance, 1_000);
    // BUG: clflush(balance, 8) is missing.
    env.store_u64(nonce, 0x5eed);
    env.clflush(nonce, 8);
    env.sfence();
    env.store_u64(commit, 1);
    env.persist(commit, 8);
}

fn main() {
    let mut config = Config::new();
    config.pool_size(1 << 16);
    let report = ModelChecker::new(config).check(&record_writer);

    println!("{report}");
    assert!(!report.is_clean());

    println!("Loads that can read from more than one store (missing-flush signature):\n");
    for race in &report.races {
        println!("{race}");
    }
    assert!(
        !report.races.is_empty(),
        "the unflushed balance field must be flagged"
    );
    println!(
        "The flagged load is the `balance` read: its candidates are the store of\n\
         1000 (never flushed) and the initial zero — exactly the diagnosis the\n\
         paper's debugging aid produces for a missing clflush."
    );
}
