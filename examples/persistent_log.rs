//! A crash-consistent append-only log built and verified from scratch.
//!
//! Demonstrates the intended workflow for library authors: write a PM
//! data structure against [`jaaru::PmEnv`], express its durability
//! contract as recovery-time assertions, and let the model checker
//! exhaustively explore every crash state. Two designs are checked:
//!
//! * a *committed-length* log (the classic commit-store idiom: records
//!   are flushed, then a persistent length field admits them), and
//! * a *checksummed* log (paper §4, "Checksum-based recovery": no
//!   flushes at all — recovery trusts exactly the records whose
//!   checksum matches).
//!
//! Run with: `cargo run -p jaaru-examples --example persistent_log`

use jaaru::{Config, ModelChecker, PmEnv};

const RECORDS: u64 = 3;

/// Record payload for slot `i` (any deterministic function works).
fn payload(i: u64) -> u64 {
    0xfeed_0000_0000_0000 | (i * 0x1111)
}

fn checksum(slot: u64, data: u64) -> u64 {
    data.rotate_left(21) ^ slot.wrapping_mul(0x9e37_79b9) ^ 0x0bad_cafe
}

/// Committed-length design: `{ len (line 0) | records[(data, pad)] }`.
fn committed_length_log(env: &dyn PmEnv) {
    let len_cell = env.root();
    let records = env.root() + 64;
    let committed = env.load_u64(len_cell);
    env.pm_assert(committed <= RECORDS, "log length corrupt");

    // Recovery contract: every admitted record is intact.
    for i in 0..committed {
        env.pm_assert(
            env.load_u64(records + i * 16) == payload(i),
            "committed record lost",
        );
    }
    // Continue appending.
    for i in committed..RECORDS {
        env.store_u64(records + i * 16, payload(i));
        env.persist(records + i * 16, 8);
        env.store_u64(len_cell, i + 1);
        env.persist(len_cell, 8);
    }
}

/// Checksummed design: `records[(data, checksum)]` and no flushes; a
/// record is valid iff its checksum matches, and validity must be
/// prefix-closed for the reader to trust a scan.
fn checksummed_log(env: &dyn PmEnv) {
    let records = env.root() + 64;
    let mut valid_prefix = 0;
    for i in 0..RECORDS {
        let data = env.load_u64(records + i * 16);
        let sum = env.load_u64(records + i * 16 + 8);
        if sum == checksum(i, data) && sum != 0 {
            env.pm_assert(
                data == payload(i),
                "checksum matched but the record is stale",
            );
            env.pm_assert(valid_prefix == i, "valid record after an invalid one");
            valid_prefix = i + 1;
        }
    }
    // (Re-)append everything past the valid prefix. Records are written
    // data-then-checksum: the checksum store is the commit, and because
    // both live on the same cache line a matching checksum proves the
    // data reached persistence with it.
    for i in valid_prefix..RECORDS {
        env.store_u64(records + i * 16, payload(i));
        env.store_u64(records + i * 16 + 8, checksum(i, payload(i)));
    }
    // A single flush so the scenario has a post-write injection point.
    env.clflush(records, (RECORDS * 16) as usize);
    env.sfence();
}

fn main() {
    let mut config = Config::new();
    config.pool_size(1 << 16).max_failures(2);

    println!("== Committed-length log (commit-store idiom), 2 failures deep ==");
    let report = ModelChecker::new(config.clone()).check(&committed_length_log);
    println!("{report}");
    assert!(report.is_clean());

    println!("\n== Checksummed log (no explicit flushes) ==");
    let report = ModelChecker::new(config).check(&checksummed_log);
    println!("{report}");
    assert!(report.is_clean());

    println!(
        "\nBoth designs survive exhaustive crash-state exploration, including\n\
         failures injected during recovery itself (max_failures = 2)."
    );
}
