//! Determinism regression tests for the exploration engine.
//!
//! The checker's contract is that exploration is a pure function of the
//! program and the configuration: re-running yields the same bugs, the
//! same traces, and the same statistics, and the parallel engine
//! (`Config::jobs`) must be indistinguishable from the sequential walk in
//! everything but wall-clock time. `CheckReport::digest` is the
//! comparison surface — it covers every bug, race, performance issue,
//! and exploration statistic, excluding only timing, per-worker
//! scheduling stats, and snapshot-cache counters (crash-point snapshots
//! are required to be invisible to results; the tests below enforce it).

use jaaru::{CheckReport, Config, ModelChecker, PmEnv, Program};
use jaaru_workloads::recipe::{
    fast_fair::{FastFair, FastFairFault},
    pclht::{Pclht, PclhtFault},
    IndexWorkload,
};

fn config(jobs: usize) -> Config {
    let mut c = Config::new();
    c.pool_size(1 << 18)
        .max_ops_per_execution(20_000)
        .max_scenarios(2_000)
        .jobs(jobs);
    c
}

fn run(program: &(dyn Program + Sync), jobs: usize) -> CheckReport {
    ModelChecker::new(config(jobs)).check(program)
}

/// A small closure program with several independent flushed lines, so
/// the decision tree fans out enough to exercise work stealing.
fn fan_out(env: &dyn PmEnv) {
    let root = env.root();
    if env.is_recovery() {
        for i in 0..5 {
            let _ = env.load_u64(root + i * 64);
        }
        return;
    }
    for i in 0..5 {
        env.store_u64(root + i * 64, i + 1);
        env.clflush(root + i * 64, 8);
    }
    env.sfence();
}

#[test]
fn repeated_sequential_runs_are_byte_identical() {
    let a = run(&fan_out, 1);
    let b = run(&fan_out, 1);
    assert_eq!(a.digest(), b.digest());
    assert_eq!(
        a.summary().rsplit_once(',').unwrap().0,
        b.summary().rsplit_once(',').unwrap().0
    );
}

#[test]
fn repeated_parallel_runs_are_byte_identical() {
    let a = run(&fan_out, 4);
    let b = run(&fan_out, 4);
    assert_eq!(a.digest(), b.digest());
}

#[test]
fn parallel_matches_sequential_on_a_clean_workload() {
    let program = IndexWorkload::<FastFair>::new(FastFairFault::None, 6);
    let sequential = run(&program, 1);
    assert!(sequential.is_clean());
    for jobs in [2usize, 4] {
        assert_eq!(
            sequential.digest(),
            run(&program, jobs).digest(),
            "jobs={jobs} diverged on clean FAST_FAIR"
        );
    }
}

#[test]
fn parallel_matches_sequential_on_a_buggy_workload() {
    let program = IndexWorkload::<Pclht>::new(PclhtFault::CtorNotFlushed, 4);
    let sequential = run(&program, 1);
    assert!(!sequential.is_clean());
    let parallel = run(&program, 4);
    assert_eq!(sequential.digest(), parallel.digest());
    // The first reported bug carries the same reproduction trace.
    assert_eq!(sequential.bugs[0].trace, parallel.bugs[0].trace);
}

fn lint_config(jobs: usize) -> Config {
    let mut c = config(jobs);
    c.lints(true).flag_perf_issues(true);
    c
}

/// Diagnostics flow through the same sequential accumulator and
/// parallel merge as bugs and races, so a lint-enabled run must be just
/// as deterministic — and the digest must actually cover the
/// diagnostics, or a lint regression could hide from these tests.
#[test]
fn diagnostics_are_deterministic_across_worker_counts() {
    let buggy = IndexWorkload::<Pclht>::new(PclhtFault::CtorNotFlushed, 4);
    let fixed = IndexWorkload::<FastFair>::new(FastFairFault::None, 6);
    for program in [&buggy as &(dyn Program + Sync), &fixed] {
        let sequential = ModelChecker::new(lint_config(1)).check(program);
        let parallel = ModelChecker::new(lint_config(4)).check(program);
        assert_eq!(sequential.digest(), parallel.digest());
    }
    let report = ModelChecker::new(lint_config(1)).check(&buggy);
    assert!(!report.diagnostics.is_empty());
    assert!(report.digest().contains("lint:"));
}

fn graph_lint_config(jobs: usize) -> Config {
    let mut c = config(jobs);
    c.lints(true)
        .lint_cross_thread(true)
        .lint_torn_stores(true)
        .lint_flush_redundancy(true);
    c
}

/// The graph-based passes (cross-thread races, torn stores, flush
/// redundancy) feed the same accumulator as the robustness lints, so
/// enabling every pass must leave the digest invariant across worker
/// counts on buggy and fixed workloads alike.
#[test]
fn graph_pass_diagnostics_are_deterministic_across_worker_counts() {
    let buggy = IndexWorkload::<Pclht>::new(PclhtFault::CtorNotFlushed, 4);
    let fixed = IndexWorkload::<FastFair>::new(FastFairFault::None, 6);
    for program in [&buggy as &(dyn Program + Sync), &fixed] {
        let sequential = ModelChecker::new(graph_lint_config(1)).check(program);
        for jobs in [2usize, 4] {
            let parallel = ModelChecker::new(graph_lint_config(jobs)).check(program);
            assert_eq!(
                sequential.digest(),
                parallel.digest(),
                "jobs={jobs} diverged with every graph pass enabled"
            );
        }
    }
}

/// SARIF rendering is a pure function of the diagnostic list, and the
/// list itself is worker-count invariant — so the SARIF document must
/// be byte-identical at every `--jobs` setting.
#[test]
fn sarif_output_is_byte_identical_across_worker_counts() {
    let buggy = IndexWorkload::<Pclht>::new(PclhtFault::CtorNotFlushed, 4);
    let baseline = jaaru::to_sarif(
        &ModelChecker::new(graph_lint_config(1))
            .check(&buggy)
            .diagnostics,
        "test",
    );
    assert!(baseline.contains("\"version\": \"2.1.0\""), "{baseline}");
    assert!(!baseline.is_empty());
    for jobs in [2usize, 4] {
        let sarif = jaaru::to_sarif(
            &ModelChecker::new(graph_lint_config(jobs))
                .check(&buggy)
                .diagnostics,
            "test",
        );
        assert_eq!(baseline, sarif, "jobs={jobs} changed the SARIF bytes");
    }
}

fn prune_config(jobs: usize, prune: bool) -> Config {
    let mut c = config(jobs);
    // Cross-thread lints stay off: that pass keys off trace extents
    // pruning legitimately shortens. Every other finding must match.
    c.lints(true)
        .lint_torn_stores(true)
        .lint_flush_redundancy(true)
        .prune(prune);
    c
}

/// Order- and occurrence-insensitive bug identity: what the user is
/// told, not how often exploration re-encountered it.
fn bug_keys(report: &CheckReport) -> Vec<(String, String, Option<String>)> {
    let mut keys: Vec<_> = report
        .bugs
        .iter()
        .map(|b| {
            (
                format!("{:?}", b.kind),
                b.message.clone(),
                b.location.clone(),
            )
        })
        .collect();
    keys.sort();
    keys.dedup();
    keys
}

/// Static persistence slicing is a pure exploration optimization: the
/// pruned run must reach the same verdict, report the same bugs, and
/// surface the same lint findings as the unpruned walk, at every worker
/// count. Stats are *not* compared — fewer post-failure executions is
/// the point.
#[test]
fn pruning_preserves_verdicts_bugs_and_lints_at_every_worker_count() {
    let buggy = IndexWorkload::<Pclht>::new(PclhtFault::CtorNotFlushed, 4);
    let fixed = IndexWorkload::<FastFair>::new(FastFairFault::None, 6);
    for program in [&buggy as &(dyn Program + Sync), &fixed] {
        let plain = ModelChecker::new(prune_config(1, false)).check(program);
        for jobs in [1usize, 2, 4] {
            let pruned = ModelChecker::new(prune_config(jobs, true)).check(program);
            assert_eq!(plain.is_clean(), pruned.is_clean(), "jobs={jobs}");
            assert_eq!(bug_keys(&plain), bug_keys(&pruned), "jobs={jobs}");
            assert_eq!(plain.lint_digest(), pruned.lint_digest(), "jobs={jobs}");
        }
    }
}

/// The pruned exploration itself is deterministic: byte-identical
/// digests across repeats and worker counts, exactly like the unpruned
/// engine.
#[test]
fn pruned_exploration_is_deterministic_across_worker_counts() {
    let program = IndexWorkload::<Pclht>::new(PclhtFault::CtorNotFlushed, 4);
    let sequential = ModelChecker::new(prune_config(1, true)).check(&program);
    assert_eq!(
        sequential.digest(),
        ModelChecker::new(prune_config(1, true))
            .check(&program)
            .digest(),
        "pruned repeat unstable"
    );
    for jobs in [2usize, 4] {
        let parallel = ModelChecker::new(prune_config(jobs, true)).check(&program);
        assert_eq!(
            sequential.digest(),
            parallel.digest(),
            "jobs={jobs} diverged under pruning"
        );
    }
}

/// A tiny deterministic PRNG (SplitMix64) so the property test below
/// can sweep many generated programs without an external crate.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// Property: for randomly generated store/flush/fence programs, every
/// exploration — sequential, parallel, repeated — produces the same
/// digest. Programs are derived purely from the seed, so a failure
/// reproduces by its seed alone.
#[test]
fn seeded_random_programs_replay_stably() {
    for seed in 0..8u64 {
        let program = move |env: &dyn PmEnv| {
            let root = env.root();
            if env.is_recovery() {
                for i in 0..4 {
                    let _ = env.load_u64(root + i * 64);
                }
                return;
            }
            let mut rng = SplitMix64(seed.wrapping_mul(0x5851_f42d_4c95_7f2d) + 1);
            for _ in 0..12 {
                let line = rng.next() % 4;
                match rng.next() % 4 {
                    0 | 1 => env.store_u64(root + line * 64, rng.next()),
                    2 => env.clflushopt(root + line * 64, 8),
                    _ => env.sfence(),
                }
            }
            env.sfence();
        };
        let baseline = ModelChecker::new(lint_config(1)).check(&program);
        let again = ModelChecker::new(lint_config(1)).check(&program);
        assert_eq!(baseline.digest(), again.digest(), "seed {seed} unstable");
        let parallel = ModelChecker::new(lint_config(4)).check(&program);
        assert_eq!(
            baseline.digest(),
            parallel.digest(),
            "seed {seed} diverged under jobs=4"
        );
    }
}

#[test]
fn worker_count_does_not_leak_into_the_digest() {
    // digest() must ignore the parallel block entirely, or any two
    // worker counts would trivially differ.
    let report = run(&fan_out, 3);
    assert!(report.parallel.is_some());
    assert!(!report.digest().contains("worker"));
}

/// Crash-point snapshots are a pure performance substitution: every
/// combination of snapshot setting and worker count must land on the
/// same digest. This is the subsystem's determinism contract — restore
/// must be observably equivalent to replay.
#[test]
fn snapshots_do_not_change_the_digest_at_any_worker_count() {
    let mut deep = config(1);
    deep.max_failures(2);
    let baseline = ModelChecker::new(deep).check(&fan_out);
    for jobs in [1usize, 2, 4] {
        for snapshots in [true, false] {
            let mut c = config(jobs);
            c.max_failures(2).snapshots(snapshots);
            let report = ModelChecker::new(c).check(&fan_out);
            assert_eq!(
                baseline.digest(),
                report.digest(),
                "jobs={jobs} snapshots={snapshots} diverged"
            );
            if snapshots {
                assert!(report.snapshots.is_some());
            } else {
                assert!(report.snapshots.is_none());
                assert_eq!(report.stats.executions_restored, 0);
            }
        }
    }
}

/// Same contract on a real workload with bugs and lints in play.
#[test]
fn snapshots_do_not_change_bug_or_lint_results() {
    let program = IndexWorkload::<Pclht>::new(PclhtFault::CtorNotFlushed, 4);
    let mut on = lint_config(1);
    let baseline = ModelChecker::new(on.clone()).check(&program);
    assert!(!baseline.is_clean());
    on.snapshots(false);
    let replayed = ModelChecker::new(on).check(&program);
    assert_eq!(baseline.digest(), replayed.digest());
    for jobs in [2usize, 4] {
        let mut c = lint_config(jobs);
        c.snapshots(false);
        assert_eq!(
            baseline.digest(),
            ModelChecker::new(c).check(&program).digest(),
            "jobs={jobs} without snapshots diverged"
        );
    }
}

/// A snapshot cache too small to hold anything still explores the
/// identical scenario set: eviction may cost replays, never coverage.
#[test]
fn tiny_snapshot_cap_only_costs_replays() {
    let mut c = config(1);
    c.max_failures(2);
    let roomy = ModelChecker::new(c.clone()).check(&fan_out);
    c.snapshot_cap(1);
    let starved = ModelChecker::new(c).check(&fan_out);
    assert_eq!(roomy.digest(), starved.digest());
    let stats = starved.snapshots.expect("cache still reports stats");
    assert!(stats.evictions > 0, "a 1-byte cap must evict: {stats}");
    assert_eq!(
        starved.stats.executions_restored, 0,
        "nothing survives in a 1-byte cache to restore from"
    );
    assert!(
        roomy.stats.executions_restored > 0,
        "the roomy cache actually restores"
    );
    assert!(roomy.stats.executions_replayed < starved.stats.executions_replayed);
}
