//! Determinism regression tests for the exploration engine.
//!
//! The checker's contract is that exploration is a pure function of the
//! program and the configuration: re-running yields the same bugs, the
//! same traces, and the same statistics, and the parallel engine
//! (`Config::jobs`) must be indistinguishable from the sequential walk in
//! everything but wall-clock time. `CheckReport::digest` is the
//! comparison surface — it covers every bug, race, performance issue,
//! and exploration statistic, excluding only timing and per-worker
//! scheduling stats.

use jaaru::{CheckReport, Config, ModelChecker, PmEnv, Program};
use jaaru_workloads::recipe::{
    fast_fair::{FastFair, FastFairFault},
    pclht::{Pclht, PclhtFault},
    IndexWorkload,
};

fn config(jobs: usize) -> Config {
    let mut c = Config::new();
    c.pool_size(1 << 18)
        .max_ops_per_execution(20_000)
        .max_scenarios(2_000)
        .jobs(jobs);
    c
}

fn run(program: &(dyn Program + Sync), jobs: usize) -> CheckReport {
    ModelChecker::new(config(jobs)).check(program)
}

/// A small closure program with several independent flushed lines, so
/// the decision tree fans out enough to exercise work stealing.
fn fan_out(env: &dyn PmEnv) {
    let root = env.root();
    if env.is_recovery() {
        for i in 0..5 {
            let _ = env.load_u64(root + i * 64);
        }
        return;
    }
    for i in 0..5 {
        env.store_u64(root + i * 64, i + 1);
        env.clflush(root + i * 64, 8);
    }
    env.sfence();
}

#[test]
fn repeated_sequential_runs_are_byte_identical() {
    let a = run(&fan_out, 1);
    let b = run(&fan_out, 1);
    assert_eq!(a.digest(), b.digest());
    assert_eq!(
        a.summary().rsplit_once(',').unwrap().0,
        b.summary().rsplit_once(',').unwrap().0
    );
}

#[test]
fn repeated_parallel_runs_are_byte_identical() {
    let a = run(&fan_out, 4);
    let b = run(&fan_out, 4);
    assert_eq!(a.digest(), b.digest());
}

#[test]
fn parallel_matches_sequential_on_a_clean_workload() {
    let program = IndexWorkload::<FastFair>::new(FastFairFault::None, 6);
    let sequential = run(&program, 1);
    assert!(sequential.is_clean());
    for jobs in [2usize, 4] {
        assert_eq!(
            sequential.digest(),
            run(&program, jobs).digest(),
            "jobs={jobs} diverged on clean FAST_FAIR"
        );
    }
}

#[test]
fn parallel_matches_sequential_on_a_buggy_workload() {
    let program = IndexWorkload::<Pclht>::new(PclhtFault::CtorNotFlushed, 4);
    let sequential = run(&program, 1);
    assert!(!sequential.is_clean());
    let parallel = run(&program, 4);
    assert_eq!(sequential.digest(), parallel.digest());
    // The first reported bug carries the same reproduction trace.
    assert_eq!(sequential.bugs[0].trace, parallel.bugs[0].trace);
}

#[test]
fn worker_count_does_not_leak_into_the_digest() {
    // digest() must ignore the parallel block entirely, or any two
    // worker counts would trivially differ.
    let report = run(&fan_out, 3);
    assert!(report.parallel.is_some());
    assert!(!report.digest().contains("worker"));
}
