//! Cross-tool comparison (§5.1): the PMTest- and XFDetector-style
//! single-execution tools against the model checker, on shared
//! workloads. The point is the paper's asymmetry: the lightweight tools
//! need annotations and miss bug classes that require exhaustive state
//! exploration; the model checker needs neither.

use jaaru::{Config, ModelChecker, PmEnv};
use jaaru_testers::{pmtest_check, xfdetector_check, PmTestViolation};
use jaaru_workloads::recipe::pbwtree::{Pbwtree, PbwtreeFault};
use jaaru_workloads::recipe::IndexWorkload;

const POOL: usize = 1 << 18;

fn jaaru_config() -> Config {
    let mut c = Config::new();
    c.pool_size(POOL)
        .max_ops_per_execution(20_000)
        .max_scenarios(2_000);
    c
}

/// The GC atomicity violation (Figure 13 #10) requires exploring the
/// specific crash state where the mapping swing is unpersisted but the
/// retire already rewired the chain: Jaaru finds it, the one-canonical-
/// state XFDetector-style tool does not, PMTest sees nothing at all.
#[test]
fn gc_atomicity_bug_needs_exhaustive_exploration() {
    let workload = IndexWorkload::<Pbwtree>::new(PbwtreeFault::GcRetireBeforeCommit, 8);

    let jaaru = ModelChecker::new(jaaru_config()).check(&workload);
    assert!(
        !jaaru.is_clean(),
        "Jaaru finds the atomicity violation: {jaaru}"
    );

    let xf = xfdetector_check(&workload, POOL);
    assert!(
        xf.is_clean(),
        "the canonical post-failure state hides the atomicity bug: {xf:?}"
    );

    let pmtest = pmtest_check(&workload, POOL);
    assert_eq!(pmtest.correctness_violations().count(), 0);
    assert!(
        pmtest.completed,
        "single execution never crashes: {pmtest:?}"
    );
}

/// PMTest's power is bounded by its annotations: the same missing-flush
/// bug is invisible without them and caught with them.
#[test]
fn pmtest_depends_entirely_on_annotations() {
    let unannotated = |env: &dyn PmEnv| {
        let root = env.root();
        env.store_u64(root + 64, 42);
        env.store_u64(root, 1); // commit before data persisted
        env.persist(root, 8);
    };
    assert!(pmtest_check(&unannotated, POOL).is_clean());

    let annotated = |env: &dyn PmEnv| {
        let root = env.root();
        env.store_u64(root + 64, 42);
        env.annotate_expect_persisted(root + 64, 8); // the missing rule
        env.store_u64(root, 1);
        env.persist(root, 8);
    };
    let report = pmtest_check(&annotated, POOL);
    assert_eq!(report.correctness_violations().count(), 1);
    assert!(matches!(
        report.correctness_violations().next().unwrap(),
        PmTestViolation::NotPersisted { .. }
    ));
}

/// The same bug needs *no* annotation under the model checker.
#[test]
fn jaaru_needs_no_annotations() {
    let program = |env: &dyn PmEnv| {
        let root = env.root();
        let data = root + 64;
        if env.load_u64(root) == 1 {
            env.pm_assert(env.load_u64(data) == 42, "lost committed data");
            return;
        }
        env.store_u64(data, 42);
        env.store_u64(root, 1);
        env.persist(root, 8);
    };
    let report = ModelChecker::new(jaaru_config()).check(&program);
    assert!(!report.is_clean());
}

/// XFDetector's ordering annotations work when the pattern matches its
/// model: a cross-failure read of data dirty at the injected failure.
#[test]
fn xfdetector_catches_annotated_cross_failure_reads() {
    let program = |env: &dyn PmEnv| {
        let root = env.root();
        let data = root + 64;
        env.annotate_commit_var(root, 8);
        if env.load_u64(root) != 0 {
            let _ = env.load_u64(data); // cross-failure read
            return;
        }
        env.store_u64(data, 42);
        env.store_u64(root, 1); // commit before data persisted
        env.persist(root, 8);
    };
    let report = xfdetector_check(&program, POOL);
    assert!(!report.is_clean(), "{report:?}");
    assert_eq!(report.commit_points, 1);
}

/// PMTest's ordering rule mirrors its `isOrderedBefore` checker.
#[test]
fn pmtest_ordering_annotation() {
    let wrong_order = |env: &dyn PmEnv| {
        let a = env.root();
        let b = env.root() + 64;
        env.store_u64(b, 2);
        env.persist(b, 8); // b persists first…
        env.store_u64(a, 1);
        env.persist(a, 8);
        env.annotate_expect_ordered(a, 8, b, 8); // …but a was required first
    };
    let report = pmtest_check(&wrong_order, POOL);
    assert_eq!(report.correctness_violations().count(), 1);
}

/// Both lightweight tools run orders of magnitude fewer executions —
/// the flip side of their missed bugs.
#[test]
fn single_execution_tools_do_less_work() {
    let workload = IndexWorkload::<Pbwtree>::fixed(6);
    let jaaru = ModelChecker::new(jaaru_config()).check(&workload);
    assert!(jaaru.stats.executions > 10, "{}", jaaru.summary());
    // PMTest: exactly one execution; XFDetector: 1 + commit points + 1
    // recovery run per commit point. Nothing to assert beyond the fact
    // they terminate quickly and quietly here.
    let pmtest = pmtest_check(&workload, POOL);
    assert!(pmtest.completed);
    let xf = xfdetector_check(&workload, POOL);
    assert!(xf.commit_points >= 1);
}
