//! End-to-end checks for the checking-as-a-service daemon: served
//! artifacts are byte-identical to one-shot CLI output (across worker
//! counts), duplicate submissions are served from the shared result
//! cache, cancellation / deadlines / panics fail closed without
//! affecting neighboring jobs, and the Unix-socket front end round-trips
//! the same protocol.

use std::sync::mpsc::channel;
use std::sync::Arc;
use std::thread;

use jaaru::ModelChecker;
use jaaru_bench::registry::recipe_bug_cases;
use jaaru_serve::json::{parse, Value};
use jaaru_serve::{daemon, job_config, Daemon, JobSpec, Request, ServeOptions, PANIC_WORKLOAD};

const BUG_ROW: &str = r#"{"kind":"bug","suite":"recipe","row":10}"#;

fn new_daemon() -> Arc<Daemon> {
    Arc::new(Daemon::new(ServeOptions::default()))
}

/// Runs request lines through batch mode, returning the exit code and
/// parsed reply envelopes.
fn batch(d: &Arc<Daemon>, input: &str) -> (i32, Vec<Value>) {
    let mut out = Vec::new();
    let code = daemon::run_batch(d, input, &mut out).expect("batch mode runs");
    let replies = String::from_utf8(out)
        .expect("utf-8 replies")
        .lines()
        .map(|line| parse(line).expect("reply line is valid JSON"))
        .collect();
    (code, replies)
}

fn field<'v>(v: &'v Value, key: &str) -> &'v Value {
    v.get(key)
        .unwrap_or_else(|| panic!("reply missing {key:?}"))
}

fn status(v: &Value) -> &str {
    field(v, "status").as_str().expect("status is a string")
}

fn artifact(v: &Value) -> &str {
    field(v, "artifact").as_str().expect("artifact present")
}

/// The one-shot report for a job spec, via exactly the checker
/// configuration the daemon derives from it.
fn one_shot(line: &str, jobs: usize) -> jaaru::CheckReport {
    let spec = match Request::from_value(&parse(line).unwrap(), jobs).unwrap() {
        Request::Job(spec) => spec,
        other => panic!("expected a job spec, got {other:?}"),
    };
    let JobSpec { workload, .. } = &spec;
    let row = match workload {
        jaaru_serve::Workload::Row { row, keys, .. } => {
            let case = recipe_bug_cases(*keys)
                .into_iter()
                .find(|c| c.id == *row)
                .expect("row exists");
            case.program
        }
        other => panic!("test only drives bug rows, got {other:?}"),
    };
    ModelChecker::new(job_config(&spec, None)).check(&*row)
}

#[test]
fn served_artifact_matches_one_shot_bytes_across_worker_counts() {
    for jobs in [1usize, 2, 4] {
        let line = format!(r#"{{"kind":"bug","suite":"recipe","row":10,"jobs":{jobs}}}"#);
        let (code, replies) = batch(&new_daemon(), &format!("{line}\n"));
        assert_eq!(code, 1, "a seeded bug is a violation");
        assert_eq!(status(&replies[0]), "violation");
        let expected = one_shot(&line, jobs).to_canonical_json();
        assert_eq!(
            artifact(&replies[0]),
            expected,
            "served canonical JSON must be byte-identical to one-shot output at jobs={jobs}"
        );
    }
}

#[test]
fn served_sarif_matches_one_shot_bytes() {
    let line = r#"{"kind":"lint","suite":"recipe","row":10,"format":"sarif"}"#;
    let (_, replies) = batch(&new_daemon(), &format!("{line}\n"));
    let report = one_shot(line, 1);
    let expected = jaaru::to_sarif(&report.diagnostics, env!("CARGO_PKG_VERSION"));
    assert_eq!(artifact(&replies[0]), expected);
}

#[test]
fn duplicate_submissions_are_served_from_the_result_cache() {
    let d = new_daemon();
    let input = format!("{BUG_ROW}\n{BUG_ROW}\n{BUG_ROW}\n");
    let (_, replies) = batch(&d, &input);
    assert_eq!(field(&replies[0], "cached").as_bool(), Some(false));
    for reply in &replies[1..] {
        assert_eq!(field(reply, "cached").as_bool(), Some(true));
        assert_eq!(
            artifact(reply),
            artifact(&replies[0]),
            "cached bytes identical"
        );
    }
    assert_eq!(d.metrics().result_hits(), 2);
    let cache = field(field(&replies[2], "metrics"), "cache");
    assert_eq!(cache.get("result_hits").and_then(Value::as_u64), Some(2));
    assert_eq!(cache.get("result_misses").and_then(Value::as_u64), Some(1));
}

#[test]
fn different_configs_do_not_share_results() {
    // Same program, different semantic config (lint vs bug) and
    // different format: three distinct result-cache entries.
    let d = new_daemon();
    let input = concat!(
        r#"{"kind":"bug","suite":"recipe","row":10}"#,
        "\n",
        r#"{"kind":"lint","suite":"recipe","row":10}"#,
        "\n",
        r#"{"kind":"bug","suite":"recipe","row":10,"format":"sarif"}"#,
        "\n",
    );
    let (_, replies) = batch(&d, input);
    for reply in &replies {
        assert_eq!(field(reply, "cached").as_bool(), Some(false));
    }
    assert_eq!(d.metrics().result_hits(), 0);
}

#[test]
fn cancelled_job_fails_closed_without_affecting_neighbors() {
    let d = new_daemon();
    let (tx, rx) = channel();
    // Queue two jobs, cancel the second while both are still queued.
    d.submit_line(
        r#"{"kind":"bug","suite":"recipe","row":10,"id":"keeper"}"#,
        &tx,
    );
    d.submit_line(
        r#"{"kind":"bug","suite":"recipe","row":12,"id":"victim"}"#,
        &tx,
    );
    d.submit_line(r#"{"kind":"cancel","id":"victim"}"#, &tx);
    let cancel_ack = parse(&rx.recv().unwrap()).unwrap();
    assert_eq!(status(&cancel_ack), "ok", "cancel acknowledged inline");

    d.close();
    let executor = {
        let d = Arc::clone(&d);
        thread::spawn(move || d.run_executor())
    };
    let first = parse(&rx.recv().unwrap()).unwrap();
    let second = parse(&rx.recv().unwrap()).unwrap();
    executor.join().unwrap();

    assert_eq!(field(&first, "id").as_str(), Some("keeper"));
    assert_eq!(status(&first), "violation", "neighbor unaffected");
    assert!(artifact(&first).contains("\"clean\": false"));
    assert_eq!(field(&second, "id").as_str(), Some("victim"));
    assert_eq!(status(&second), "cancelled");
    assert_eq!(field(&second, "artifact"), &Value::Null, "fails closed");
    let jobs = field(field(&second, "metrics"), "jobs");
    assert_eq!(jobs.get("cancelled").and_then(Value::as_u64), Some(1));
}

#[test]
fn deadline_exceeded_job_fails_closed_without_affecting_neighbors() {
    let d = new_daemon();
    let input = concat!(
        r#"{"kind":"check","benchmark":"P-CLHT","keys":6,"deadline_ms":0,"id":"late"}"#,
        "\n",
        r#"{"kind":"bug","suite":"recipe","row":10,"id":"next"}"#,
        "\n",
    );
    let (code, replies) = batch(&d, input);
    assert_eq!(field(&replies[0], "id").as_str(), Some("late"));
    assert_eq!(status(&replies[0]), "deadline");
    assert_eq!(field(&replies[0], "artifact"), &Value::Null, "fails closed");
    assert!(field(&replies[0], "error")
        .as_str()
        .unwrap()
        .contains("deadline"));
    assert_eq!(status(&replies[1]), "violation", "daemon keeps serving");
    assert_eq!(code, 3, "deadline kills are infra failures in batch mode");
}

#[test]
fn panicking_workload_fails_while_daemon_keeps_serving() {
    let d = new_daemon();
    let input = format!(
        "{}\n{BUG_ROW}\n",
        format_args!(r#"{{"kind":"check","benchmark":"{PANIC_WORKLOAD}","id":"boom"}}"#)
    );
    let (code, replies) = batch(&d, &input);
    assert_eq!(status(&replies[0]), "failed");
    assert!(field(&replies[0], "error")
        .as_str()
        .unwrap()
        .contains("panicked"));
    assert_eq!(
        status(&replies[1]),
        "violation",
        "daemon survived the panic"
    );
    let jobs = field(field(&replies[1], "metrics"), "jobs");
    assert_eq!(jobs.get("retries").and_then(Value::as_u64), Some(1));
    assert_eq!(code, 3);
}

#[test]
fn unix_socket_roundtrip_serves_jobs_and_shuts_down() {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::{UnixListener, UnixStream};

    let path = std::env::temp_dir().join(format!("jaaru-serve-test-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let listener = UnixListener::bind(&path).expect("bind test socket");
    let d = new_daemon();
    let server = thread::spawn(move || daemon::serve(d, listener));

    let stream = UnixStream::connect(&path).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let write_line = |line: &str| {
        let mut s = &stream;
        writeln!(s, "{line}").expect("write request");
    };
    let mut read_reply = || {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read reply");
        parse(line.trim_end()).expect("valid reply JSON")
    };

    write_line(r#"{"kind":"stats"}"#);
    let stats = read_reply();
    assert_eq!(field(&stats, "id").as_str(), Some("stats"));

    write_line(BUG_ROW);
    write_line(BUG_ROW);
    let first = read_reply();
    let second = read_reply();
    assert_eq!(status(&first), "violation");
    assert_eq!(field(&second, "cached").as_bool(), Some(true));
    assert_eq!(artifact(&second), artifact(&first));

    write_line(r#"{"kind":"shutdown"}"#);
    let ack = read_reply();
    assert_eq!(field(&ack, "id").as_str(), Some("shutdown"));
    server.join().unwrap().expect("serve loop exits cleanly");
    let _ = std::fs::remove_file(&path);
}
