//! Lock-free workload family under the durable-linearizability oracle:
//! every seeded fault is detected with the violating op localized, every
//! fixed variant checks clean (and lint-clean), digests are identical
//! across job counts and snapshot modes, and the flush-level faults
//! auto-repair while the control-flow double-apply fault is refused.

use jaaru::{synthesize_repair, CheckReport, Config, FixEdit, ModelChecker, Program};
use jaaru_workloads::lockfree::clevel::ClevelHash;
use jaaru_workloads::lockfree::harris::HarrisList;
use jaaru_workloads::lockfree::msqueue::MsQueue;
use jaaru_workloads::lockfree::treiber::TreiberStack;
use jaaru_workloads::lockfree::{LfFault, LockFree, LockFreeWorkload};

fn config(jobs: usize, lints: bool, snapshots: bool) -> Config {
    let mut c = Config::new();
    c.pool_size(1 << 18)
        .max_scenarios(20_000)
        .max_ops_per_execution(20_000)
        .jobs(jobs)
        .lints(lints)
        .snapshots(snapshots);
    c
}

fn check<S: LockFree>(fault: LfFault, jobs: usize, lints: bool, snapshots: bool) -> CheckReport {
    ModelChecker::new(config(jobs, lints, snapshots)).check(&LockFreeWorkload::<S>::faulted(fault))
}

fn assert_dlin_bug(report: &CheckReport, needle: &str, what: &str) {
    assert!(!report.is_clean(), "{what}: fault not detected");
    assert!(
        report
            .bugs
            .iter()
            .any(|b| b.message.contains("durable linearizability violation")
                && b.message.contains(needle)),
        "{what}: no dlin bug localizing {needle:?}; got {:?}",
        report
            .bugs
            .iter()
            .map(|b| b.message.as_str())
            .collect::<Vec<_>>()
    );
}

#[test]
fn fixed_variants_are_durably_linearizable_and_lint_clean() {
    let stack = check::<TreiberStack>(LfFault::None, 2, true, true);
    assert!(stack.is_clean(), "lf-stack: {stack}");
    let queue = check::<MsQueue>(LfFault::None, 2, true, true);
    assert!(queue.is_clean(), "lf-queue: {queue}");
    let list = check::<HarrisList>(LfFault::None, 2, true, true);
    assert!(list.is_clean(), "lf-list: {list}");
    let hash = check::<ClevelHash>(LfFault::None, 2, true, true);
    assert!(hash.is_clean(), "lf-hash: {hash}");
    for (name, report) in [
        ("lf-stack", &stack),
        ("lf-queue", &queue),
        ("lf-list", &list),
        ("lf-hash", &hash),
    ] {
        assert!(
            report.diagnostics.iter().all(|d| !d.is_error()),
            "{name} must lint clean, got {:?}",
            report.diagnostics
        );
    }
}

#[test]
fn stack_unpersisted_cas_loses_a_completed_push() {
    let report = check::<TreiberStack>(LfFault::UnpersistedCas, 2, false, true);
    assert_dlin_bug(&report, "push(", "lf-stack unpersisted-cas");
}

#[test]
fn stack_double_apply_is_detected() {
    let report = check::<TreiberStack>(LfFault::DoubleApply, 2, false, true);
    assert!(
        report
            .bugs
            .iter()
            .any(|b| b.message.contains("durable linearizability violation")),
        "lf-stack double-apply: {:?}",
        report
            .bugs
            .iter()
            .map(|b| b.message.as_str())
            .collect::<Vec<_>>()
    );
}

#[test]
fn queue_missing_link_flush_loses_a_completed_enqueue() {
    let report = check::<MsQueue>(LfFault::MissingLinkFlush, 2, false, true);
    assert_dlin_bug(&report, "enqueue(", "lf-queue missing-link-flush");
}

#[test]
fn queue_double_apply_is_detected() {
    let report = check::<MsQueue>(LfFault::DoubleApply, 2, false, true);
    assert!(
        report
            .bugs
            .iter()
            .any(|b| b.message.contains("durable linearizability violation")),
        "lf-queue double-apply: {:?}",
        report
            .bugs
            .iter()
            .map(|b| b.message.as_str())
            .collect::<Vec<_>>()
    );
}

#[test]
fn list_unpersisted_cas_loses_a_completed_insert() {
    let report = check::<HarrisList>(LfFault::UnpersistedCas, 2, false, true);
    assert_dlin_bug(&report, "insert(", "lf-list unpersisted-cas");
}

#[test]
fn list_unflushed_init_breaks_the_sentinel_chain() {
    let report = check::<HarrisList>(LfFault::UnflushedInit, 2, false, true);
    assert!(
        report
            .bugs
            .iter()
            .any(|b| b.message.contains("sentinel chain")),
        "lf-list unflushed-init: {:?}",
        report
            .bugs
            .iter()
            .map(|b| b.message.as_str())
            .collect::<Vec<_>>()
    );
}

#[test]
fn hash_missing_link_flush_corrupts_a_published_entry() {
    let report = check::<ClevelHash>(LfFault::MissingLinkFlush, 2, false, true);
    assert_dlin_bug(&report, "could have produced", "lf-hash missing-link-flush");
}

#[test]
fn hash_unflushed_init_loses_the_geometry_word() {
    let report = check::<ClevelHash>(LfFault::UnflushedInit, 2, false, true);
    assert!(
        report
            .bugs
            .iter()
            .any(|b| b.message.contains("geometry word")),
        "lf-hash unflushed-init: {:?}",
        report
            .bugs
            .iter()
            .map(|b| b.message.as_str())
            .collect::<Vec<_>>()
    );
}

/// Digest identity across `--jobs` 1/2/4 and snapshots on/off: the
/// exploration is deterministic and mode-independent for both a fixed
/// and a faulted workload of the new family.
#[test]
fn digests_are_identical_across_jobs_and_snapshot_modes() {
    let baseline_fixed = check::<TreiberStack>(LfFault::None, 1, true, true).digest();
    let baseline_faulted = check::<MsQueue>(LfFault::MissingLinkFlush, 1, true, true).digest();
    for jobs in [2, 4] {
        assert_eq!(
            check::<TreiberStack>(LfFault::None, jobs, true, true).digest(),
            baseline_fixed,
            "lf-stack digest diverges at jobs={jobs}"
        );
        assert_eq!(
            check::<MsQueue>(LfFault::MissingLinkFlush, jobs, true, true).digest(),
            baseline_faulted,
            "lf-queue digest diverges at jobs={jobs}"
        );
    }
    assert_eq!(
        check::<TreiberStack>(LfFault::None, 2, true, false).digest(),
        baseline_fixed,
        "lf-stack digest diverges with snapshots off"
    );
    assert_eq!(
        check::<MsQueue>(LfFault::MissingLinkFlush, 2, true, false).digest(),
        baseline_faulted,
        "lf-queue digest diverges with snapshots off"
    );
}

fn repair_config() -> Config {
    let mut c = config(2, true, true);
    // Flush-redundancy advisories would fight inserted flushes during
    // minimization, same as the CLI's repair mode.
    c.lint_flush_redundancy(false);
    c
}

/// The flush-level faults must auto-repair to verified, flush-only edit
/// sets; the recovery-logic double-apply fault has no store-level fix
/// and must be refused (left unverified).
#[test]
fn repair_sweep_fixes_flush_faults_and_refuses_double_apply() {
    let cfg = repair_config();
    let fixable: [(&str, Box<dyn Program + Sync>); 2] = [
        (
            "lf-queue missing-link-flush",
            Box::new(LockFreeWorkload::<MsQueue>::faulted(
                LfFault::MissingLinkFlush,
            )),
        ),
        (
            "lf-hash missing-link-flush",
            Box::new(LockFreeWorkload::<ClevelHash>::faulted(
                LfFault::MissingLinkFlush,
            )),
        ),
    ];
    for (what, program) in &fixable {
        let outcome = synthesize_repair(&cfg, program.as_ref());
        assert!(
            outcome.verified,
            "{what}: expected a verified repair, got edits {:?}",
            outcome.edits
        );
        assert!(!outcome.edits.is_empty(), "{what}: empty edit set");
        assert!(
            outcome
                .edits
                .iter()
                .all(|e| matches!(e, FixEdit::InsertFlush { .. } | FixEdit::InsertFence { .. })),
            "{what}: non-flush edit in {:?}",
            outcome.edits
        );
    }

    let double_apply = LockFreeWorkload::<TreiberStack>::faulted(LfFault::DoubleApply);
    let outcome = synthesize_repair(&cfg, &double_apply);
    assert!(
        !outcome.verified,
        "double-apply is a recovery-logic bug: flush/fence edits must not verify, got {:?}",
        outcome.edits
    );
}
