//! The satellite acceptance tests for `jaaru-fuzz`: a differential
//! campaign over ~200 seeds with every oracle in agreement, plus the
//! planted-divergence drill — mislabel a seeded-fault program, watch
//! the harness catch the disagreement and shrink it to a ≤10-op
//! reproducer.
//!
//! Campaign determinism is asserted at the JSON level: the exact bytes
//! `jaaru_cli fuzz --format json` would print must not change between
//! runs or with the base run's worker count.

use jaaru_fuzz::{generate, minimize_divergence, run_campaign, FaultMode, Oracle};

/// Seeds the campaign sweeps. Matches the acceptance command
/// (`jaaru_cli fuzz --seeds 200 --differential`).
const SEEDS: u64 = 200;
const OPS_MAX: usize = 14;

#[test]
fn campaign_of_200_seeds_has_zero_divergences() {
    let oracle = Oracle::default();
    let report = run_campaign(&oracle, 0, SEEDS, OPS_MAX, |_, _| {});
    assert!(
        report.is_clean(),
        "oracles disagreed:\n{}",
        report
            .divergences
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert_eq!(report.buggy + report.clean, SEEDS);
    // FaultMode::Auto plants faults in a deterministic fraction of
    // seeds; both populations must be represented for the campaign to
    // mean anything.
    assert!(report.buggy > 0, "no seeded faults in {SEEDS} seeds");
    assert!(report.clean > 0, "no fault-free programs in {SEEDS} seeds");
    assert_eq!(report.yat_skipped, 0, "eager baseline covered every seed");
}

#[test]
fn campaign_json_is_identical_across_runs_and_worker_counts() {
    let sequential = Oracle::default();
    let parallel = Oracle {
        jobs: 4,
        ..Oracle::default()
    };
    // Smaller sweep than the full campaign: this test pins bytes, the
    // one above pins verdicts.
    let a = run_campaign(&sequential, 0, 60, OPS_MAX, |_, _| {});
    let b = run_campaign(&sequential, 0, 60, OPS_MAX, |_, _| {});
    let c = run_campaign(&parallel, 0, 60, OPS_MAX, |_, _| {});
    assert_eq!(a.to_json(), b.to_json(), "re-run changed the report");
    assert_eq!(a.to_json(), c.to_json(), "worker count changed the report");
    assert_eq!(a.fingerprint, c.fingerprint);
}

/// Plant a divergence by breaking the *expectation* rather than the
/// checker: a seeded-fault program labelled as clean. The oracle must
/// flag it and the minimizer must shrink the reproducer to ≤10 ops
/// while the divergence persists, and its replay must be deterministic.
#[test]
fn planted_divergence_is_caught_and_minimized() {
    let oracle = Oracle {
        differential: false,
        ..Oracle::default()
    };
    // A forced-fault program with a deliberately wrong expectation.
    let program = generate(42, 18, FaultMode::Force);
    let outcome = oracle.check_program_expecting(&program, false);
    assert!(
        outcome.divergences.iter().any(|d| d.axis == "ground-truth"),
        "mislabelled program must diverge: {:?}",
        outcome.divergences
    );

    let repro = minimize_divergence(&oracle, &program, false)
        .expect("divergence observed above must minimize");
    assert_eq!(repro.axis, "ground-truth");
    assert!(
        repro.program.ops.len() <= 10,
        "reproducer must shrink to <=10 ops, got {}: {:?}",
        repro.program.ops.len(),
        repro.program.ops
    );
    // The minimized program still diverges...
    let again = oracle.check_program_expecting(&repro.program, false);
    assert!(!again.divergences.is_empty());
    // ...and deterministically: digest and trace are stable.
    assert_eq!(again.digest, repro.digest);
    assert_eq!(again.trace, repro.trace);
}
