//! Table 1 validation: the x86-TSO reordering constraints, derived from
//! the simulator by exhaustive litmus exploration. Each test probes one
//! or more cells of the paper's matrix (✓ preserved / ✗ reorderable /
//! CL same-cache-line-only).

use jaaru::litmus::{LitmusOp, LitmusProgram};
use jaaru::PmAddr;
use std::collections::BTreeSet;

const X: PmAddr = PmAddr::new(64);
const X2: PmAddr = PmAddr::new(72); // same line as X
const Y: PmAddr = PmAddr::new(128);

fn reg_outcomes(p: &LitmusProgram) -> BTreeSet<Vec<Vec<u8>>> {
    p.outcomes().into_iter().map(|o| o.regs).collect()
}

#[test]
fn write_read_reorders() {
    // Table 1 [Write, Re] = ✗: the SB litmus observes r1 = r2 = 0.
    let p = LitmusProgram::new(vec![
        vec![LitmusOp::Store(X, 1), LitmusOp::Load(Y)],
        vec![LitmusOp::Store(Y, 1), LitmusOp::Load(X)],
    ]);
    assert!(reg_outcomes(&p).contains(&vec![vec![0], vec![0]]));
}

#[test]
fn mfence_orders_write_read() {
    // Table 1 [mfence, *] and [*, mf] = ✓.
    let p = LitmusProgram::new(vec![
        vec![LitmusOp::Store(X, 1), LitmusOp::Mfence, LitmusOp::Load(Y)],
        vec![LitmusOp::Store(Y, 1), LitmusOp::Mfence, LitmusOp::Load(X)],
    ]);
    assert!(!reg_outcomes(&p).contains(&vec![vec![0], vec![0]]));
}

#[test]
fn write_write_preserved() {
    // Table 1 [Write, Wr] = ✓: message passing shows no (1, 0).
    let p = LitmusProgram::new(vec![
        vec![LitmusOp::Store(X, 1), LitmusOp::Store(Y, 1)],
        vec![LitmusOp::Load(Y), LitmusOp::Load(X)],
    ]);
    assert!(!reg_outcomes(&p).contains(&vec![vec![], vec![1, 0]]));
}

#[test]
fn read_read_preserved() {
    // Table 1 [Read, Re] = ✓ under TSO: combined with W→W order, a
    // reader never sees the second write without the first.
    let p = LitmusProgram::new(vec![
        vec![
            LitmusOp::Store(X, 1),
            LitmusOp::Mfence,
            LitmusOp::Store(Y, 1),
        ],
        vec![LitmusOp::Load(Y), LitmusOp::Load(X)],
    ]);
    assert!(!reg_outcomes(&p).contains(&vec![vec![], vec![1, 0]]));
}

#[test]
fn write_clflushopt_same_line_ordered() {
    // Table 1 [Write, clflushopt] = CL: same line cannot reorder, so a
    // fenced flush always covers the preceding same-line store.
    let p = LitmusProgram::new(vec![vec![
        LitmusOp::Store(X, 1),
        LitmusOp::Clflushopt(X),
        LitmusOp::Sfence,
    ]]);
    assert!(p.outcomes().iter().all(|o| !o.flush_bounds.is_empty()));
    // The bound is at or after the store (σ ≥ 1).
    assert!(p
        .outcomes()
        .iter()
        .all(|o| o.flush_bounds.iter().all(|&(_, begin, _)| begin >= 1)));
}

#[test]
fn clflushopt_write_reorders() {
    // Table 1 [clflushopt, Wr] = ✗: with no fence the flush may never
    // take effect at all (dropped from the flush buffer at the crash).
    let p = LitmusProgram::new(vec![vec![
        LitmusOp::Store(X, 1),
        LitmusOp::Clflushopt(X),
        LitmusOp::Store(X2, 2),
    ]]);
    assert!(p.outcomes().iter().any(|o| o.flush_bounds.is_empty()));
}

#[test]
fn clflushopt_sfence_ordered() {
    // Table 1 [clflushopt, sf] = ✓: after the sfence the flush has
    // landed in every execution.
    let p = LitmusProgram::new(vec![vec![
        LitmusOp::Store(X, 1),
        LitmusOp::Clflushopt(X),
        LitmusOp::Sfence,
        LitmusOp::Store(X2, 2),
    ]]);
    assert!(p.outcomes().iter().all(|o| !o.flush_bounds.is_empty()));
}

#[test]
fn clflushopt_clflushopt_reorders() {
    // Table 1 [clflushopt, clflushopt] = ✗: two unfenced flushes are
    // both droppable — some execution leaves both lines unconstrained.
    let p = LitmusProgram::new(vec![vec![
        LitmusOp::Store(X, 1),
        LitmusOp::Store(Y, 1),
        LitmusOp::Clflushopt(X),
        LitmusOp::Clflushopt(Y),
    ]]);
    assert!(p.outcomes().iter().any(|o| o.flush_bounds.is_empty()));
}

#[test]
fn clflush_clflushopt_same_line_ordered() {
    // Table 1 [clflush, clflushopt] = CL: the optimized flush cannot
    // move before a same-line clflush — its bound includes the clflush.
    let p = LitmusProgram::new(vec![vec![
        LitmusOp::Store(X, 1),
        LitmusOp::Clflush(X),
        LitmusOp::Clflushopt(X),
        LitmusOp::Sfence,
    ]]);
    // Store = σ1, clflush = σ2 → every final bound ≥ σ2.
    assert!(p
        .outcomes()
        .iter()
        .all(|o| o.flush_bounds.iter().all(|&(_, begin, _)| begin >= 2)));
}

#[test]
fn clflushopt_other_line_clflush_reorders() {
    // Table 1 [clflushopt, clflush] = CL → different lines reorder: the
    // unfenced clflushopt(Y) can still be dropped even though a clflush
    // to another line follows.
    let p = LitmusProgram::new(vec![vec![
        LitmusOp::Store(Y, 1),
        LitmusOp::Clflushopt(Y),
        LitmusOp::Store(X, 1),
        LitmusOp::Clflush(X),
    ]]);
    let y_line = Y.cache_line().index();
    assert!(p
        .outcomes()
        .iter()
        .any(|o| o.flush_bounds.iter().all(|&(line, _, _)| line != y_line)));
}

#[test]
fn sfence_write_preserved() {
    // Table 1 [sfence, Wr] = ✓: a store after sfence is ordered after
    // the fenced flush — the flush bound never covers the later store.
    let p = LitmusProgram::new(vec![vec![
        LitmusOp::Store(X, 1),
        LitmusOp::Clflushopt(X),
        LitmusOp::Sfence,
        LitmusOp::Store(X2, 9),
    ]]);
    for o in p.outcomes() {
        for &(_, begin, _) in &o.flush_bounds {
            // The later store gets a σ after the sfence; the flush bound
            // derives from the earlier store/fence, never the late store.
            assert!(begin <= 3, "flush bound leaked past the fence: {o:?}");
        }
    }
}

#[test]
fn clflush_is_store_ordered() {
    // Table 1 [Write, clflush] = ✓ and [clflush, Wr] = ✓: clflush moves
    // through the store buffer like a store, so it always lands and its
    // bound sits between the surrounding stores.
    let p = LitmusProgram::new(vec![vec![
        LitmusOp::Store(X, 1),
        LitmusOp::Clflush(X),
        LitmusOp::Store(X, 2),
    ]]);
    for o in p.outcomes() {
        assert_eq!(o.flush_bounds.len(), 1);
        let (_, begin, _) = o.flush_bounds[0];
        assert_eq!(begin, 2, "clflush lands exactly between the stores");
    }
}
