//! `ModelChecker::replay` round-trips: every bug a check reports comes
//! with a decision trace, and replaying that trace alone reproduces the
//! same symptom. This is the paper's "strong witness" property — a
//! reported bug is not a statistical claim but a recipe.

use jaaru::{Config, ModelChecker, PmEnv};
use jaaru_workloads::recipe::{
    pclht::{Pclht, PclhtFault},
    IndexWorkload,
};

fn checker() -> ModelChecker {
    let mut c = Config::new();
    c.pool_size(1 << 18)
        .max_ops_per_execution(20_000)
        .max_scenarios(2_000);
    ModelChecker::new(c)
}

/// The Figure 4 commit-store pattern with the data flush removed: the
/// recovery assertion can observe the commit flag without the data.
fn missing_flush(env: &dyn PmEnv) {
    let commit = env.root();
    let data = commit + 64;
    if env.load_u64(commit) != 0 {
        env.pm_assert(env.load_u64(data) == 42, "committed data lost");
        return;
    }
    env.store_u64(data, 42);
    env.store_u64(commit, 1);
    env.persist(commit, 8);
}

#[test]
fn replaying_a_bug_trace_reproduces_the_bug() {
    let checker = checker();
    let report = checker.check(&missing_flush);
    assert!(!report.is_clean());
    for bug in &report.bugs {
        let replayed = checker.replay(&missing_flush, &bug.trace);
        assert_eq!(
            replayed.stats.scenarios, 1,
            "replay runs exactly one scenario"
        );
        assert_eq!(
            replayed.bugs.len(),
            1,
            "trace {:?} must reproduce its bug",
            bug.trace
        );
        assert_eq!(replayed.bugs[0].kind, bug.kind);
        assert_eq!(replayed.bugs[0].message, bug.message);
        assert_eq!(replayed.bugs[0].trace, bug.trace);
    }
}

#[test]
fn replaying_the_root_scenario_of_a_clean_program_is_clean() {
    let clean = |env: &dyn PmEnv| {
        let commit = env.root();
        let data = commit + 64;
        if env.load_u64(commit) != 0 {
            env.pm_assert(env.load_u64(data) == 42, "committed data lost");
            return;
        }
        env.store_u64(data, 42);
        env.persist(data, 8);
        env.store_u64(commit, 1);
        env.persist(commit, 8);
    };
    let checker = checker();
    assert!(checker.check(&clean).is_clean());
    // The empty trace steers to the all-defaults scenario.
    let replayed = checker.replay(&clean, &[]);
    assert!(replayed.is_clean());
    assert_eq!(replayed.stats.scenarios, 1);
}

#[test]
fn workload_bug_traces_round_trip() {
    let program = IndexWorkload::<Pclht>::new(PclhtFault::CtorNotFlushed, 4);
    let checker = checker();
    let report = checker.check(&program);
    assert!(!report.is_clean());
    let bug = &report.bugs[0];
    let replayed = checker.replay(&program, &bug.trace);
    assert_eq!(replayed.bugs.len(), 1);
    assert_eq!(replayed.bugs[0].kind, bug.kind);
    assert_eq!(replayed.bugs[0].execution_index, bug.execution_index);
}

#[test]
fn parallel_bug_traces_replay_identically() {
    // Traces found by the parallel engine must be valid replay witnesses
    // through the same (sequential) replay path.
    let mut c = Config::new();
    c.pool_size(1 << 18)
        .max_ops_per_execution(20_000)
        .max_scenarios(2_000)
        .jobs(4);
    let checker = ModelChecker::new(c);
    let report = checker.check(&missing_flush);
    assert!(!report.is_clean());
    for bug in &report.bugs {
        let replayed = checker.replay(&missing_flush, &bug.trace);
        assert_eq!(replayed.bugs.len(), 1);
        assert_eq!(replayed.bugs[0].kind, bug.kind);
    }
}
