//! Multi-failure scenarios: the paper's command-line option that lets
//! failures hit post-failure (recovery) executions too, bounding the
//! depth of the `exec` stack.

use std::collections::BTreeSet;
use std::sync::Mutex;

use jaaru::{Config, ModelChecker, PmEnv};

fn config(max_failures: usize) -> Config {
    let mut c = Config::new();
    c.pool_size(1 << 12).max_failures(max_failures);
    c
}

/// A generation counter that each execution bumps durably.
fn generation_program(env: &dyn PmEnv) {
    let cell = env.root();
    let g = env.load_u64(cell);
    env.pm_assert(g <= 8, "generation corrupt");
    env.store_u64(cell, g + 1);
    env.persist(cell, 8);
}

#[test]
fn deeper_failure_budgets_explore_more() {
    let one = ModelChecker::new(config(1)).check(&generation_program);
    let two = ModelChecker::new(config(2)).check(&generation_program);
    let three = ModelChecker::new(config(3)).check(&generation_program);
    assert!(one.is_clean() && two.is_clean() && three.is_clean());
    assert!(two.stats.scenarios > one.stats.scenarios);
    assert!(three.stats.scenarios > two.stats.scenarios);
}

#[test]
fn generations_observed_grow_with_depth() {
    // With k failures, recovery executions can observe generations up
    // to k (each crashed execution may or may not have persisted its
    // bump).
    for depth in 1..=3usize {
        let observed = Mutex::new(BTreeSet::new());
        let program = |env: &dyn PmEnv| {
            let cell = env.root();
            let g = env.load_u64(cell);
            observed.lock().unwrap().insert((env.execution_index(), g));
            env.store_u64(cell, g + 1);
            env.persist(cell, 8);
        };
        let report = ModelChecker::new(config(depth)).check(&program);
        assert!(report.is_clean());
        let max_gen = observed
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|(_, g)| g)
            .max()
            .unwrap();
        assert_eq!(
            max_gen, depth as u64,
            "an execution after {depth} failures can see {depth} persisted bumps"
        );
    }
}

/// An undo-style protocol must also survive a crash *during recovery*:
/// the rollback itself is re-entrant. The protocol guards a (data, gen)
/// pair with a backup + stage flag, and a monotonic `committed` counter
/// (persisted last) witnesses completed updates.
fn guarded_update_program(flush_backup: bool) -> impl jaaru::Program {
    move |env: &dyn PmEnv| {
        let stage = env.root();
        let data = env.root() + 64;
        let backup = env.root() + 128; // (data, gen) pair
        let gen = env.root() + 192;
        let committed = env.root() + 256;

        // Recovery: roll back an in-flight update (idempotent).
        if env.load_u64(stage) == 1 {
            let (bv, bg) = (env.load_u64(backup), env.load_u64(backup + 8));
            env.store_u64(data, bv);
            env.store_u64(gen, bg);
            env.clflush(data, 8);
            env.clflush(gen, 8);
            env.sfence();
            env.store_u64(stage, 0);
            env.persist(stage, 8);
        }
        let v = env.load_u64(data);
        let g = env.load_u64(gen);
        env.pm_assert(v == g * 10, "data does not match its generation");
        env.pm_assert(
            g >= env.load_u64(committed),
            "a committed update was rolled back",
        );
        if g >= 2 {
            return;
        }

        // One guarded update: backup, mark, mutate (torn on purpose),
        // flush, unmark, then witness completion.
        env.store_u64(backup, v);
        env.store_u64(backup + 8, g);
        if flush_backup {
            env.persist(backup, 16);
        }
        env.store_u64(stage, 1);
        env.persist(stage, 8);
        env.store_u64(data, v + 5); // torn intermediate
        env.store_u64(data, v + 10);
        env.store_u64(gen, g + 1);
        env.clflush(data, 8);
        env.clflush(gen, 8);
        env.sfence();
        env.store_u64(stage, 0);
        env.persist(stage, 8);
        env.store_u64(committed, g + 1);
        env.persist(committed, 8);
    }
}

#[test]
fn reentrant_recovery_is_checked() {
    for depth in 1..=3usize {
        let report = ModelChecker::new(config(depth)).check(&guarded_update_program(true));
        assert!(report.is_clean(), "depth {depth}: {report}");
    }
}

/// The same protocol with the backup flush removed rolls a committed
/// update back to a stale snapshot — caught only because exploration
/// reaches the second update's crash window (two failures deep).
#[test]
fn broken_reentrant_recovery_is_caught() {
    let report = ModelChecker::new(config(2)).check(&guarded_update_program(false));
    assert!(!report.is_clean(), "lost backup must surface: {report}");
    assert!(
        report
            .bugs
            .iter()
            .any(|b| b.message.contains("committed update was rolled back")
                || b.message.contains("generation")),
        "{report}"
    );
}

#[test]
fn crash_points_are_recorded_per_failure() {
    let program = |env: &dyn PmEnv| {
        let cell = env.root();
        let g = env.load_u64(cell);
        env.pm_assert(g < 2, "third generation reached"); // trips at depth 2
        env.store_u64(cell, g + 1);
        env.persist(cell, 8);
    };
    let report = ModelChecker::new(config(2)).check(&program);
    assert!(!report.is_clean());
    let bug = &report.bugs[0];
    assert_eq!(
        bug.crash_points.len(),
        2,
        "two failures preceded the symptom: {bug}"
    );
    assert_eq!(bug.execution_index, 2);
}
