//! Replays the committed corpus of minimized reproducers
//! (`tests/corpus/*.repro`) and holds the checker to its recorded
//! behaviour byte-for-byte:
//!
//! * a full check of each reproducer's program must yield exactly the
//!   stored digest (exploration order, bug dedup, race reporting, and
//!   digest formatting are all pinned), and
//! * replaying the stored decision trace must reproduce the recorded
//!   bug — the paper's "strong witness" property for harvested
//!   findings.
//!
//! The corpus is regenerated with
//! `jaaru_cli fuzz --seeds 60 --harvest --corpus tests/corpus`
//! (see `tests/corpus/README.md`).

use std::path::Path;

use jaaru::{Config, ModelChecker};
use jaaru_fuzz::corpus::load_dir;
use jaaru_fuzz::oracle::POOL_SIZE;

fn corpus() -> Vec<jaaru_fuzz::Reproducer> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let corpus = load_dir(&dir).expect("corpus parses");
    assert!(
        !corpus.is_empty(),
        "committed corpus must not be empty ({})",
        dir.display()
    );
    corpus
}

fn checker() -> ModelChecker {
    let mut config = Config::new();
    config.pool_size(POOL_SIZE);
    ModelChecker::new(config)
}

#[test]
fn every_reproducer_checks_to_its_recorded_digest() {
    let checker = checker();
    for repro in corpus() {
        let report = checker.check(&repro.program);
        assert_eq!(
            report.digest(),
            repro.digest,
            "{}: digest drifted from the committed reproducer",
            repro.name
        );
        // Harvested reproducers are seeded-fault programs: buggy, with
        // every bug naming the faulted line.
        assert_eq!(repro.axis, "seeded-fault", "{}", repro.name);
        let fault = repro.program.fault.expect("harvested => fault label");
        assert!(!report.is_clean(), "{}: fault must manifest", repro.name);
        for bug in &report.bugs {
            assert!(
                bug.message.contains(&format!("(line {fault})")),
                "{}: bug blames the wrong line: {}",
                repro.name,
                bug.message
            );
        }
    }
}

#[test]
fn every_stored_trace_replays_its_bug() {
    let checker = checker();
    for repro in corpus() {
        let replayed = checker.replay(&repro.program, &repro.trace);
        assert!(
            !replayed.bugs.is_empty(),
            "{}: stored trace no longer reproduces the bug",
            repro.name
        );
        let fault = repro.program.fault.expect("harvested => fault label");
        assert!(
            replayed
                .bugs
                .iter()
                .any(|b| b.message.contains(&format!("(line {fault})"))),
            "{}: replayed bug does not match the recorded one",
            repro.name
        );
    }
}

/// Enabling every graph-based analysis pass must not perturb
/// exploration on the committed corpus: the passes read recorded
/// traces, they never add or reorder scenarios.
#[test]
fn graph_passes_do_not_perturb_corpus_exploration() {
    let base = checker();
    let mut config = Config::new();
    config
        .pool_size(POOL_SIZE)
        .lints(true)
        .lint_cross_thread(true)
        .lint_torn_stores(true)
        .lint_flush_redundancy(true);
    let linted = ModelChecker::new(config);
    for repro in corpus() {
        assert_eq!(
            base.check(&repro.program).exploration_digest(),
            linted.check(&repro.program).exploration_digest(),
            "{}: graph passes changed exploration",
            repro.name
        );
    }
}

/// Replay twice: the trace is a strong witness, so both the replay
/// digest and the full-check digest must be run-to-run stable.
#[test]
fn corpus_replay_is_deterministic() {
    let checker = checker();
    for repro in corpus() {
        let a = checker.replay(&repro.program, &repro.trace);
        let b = checker.replay(&repro.program, &repro.trace);
        assert_eq!(a.digest(), b.digest(), "{}", repro.name);
    }
}
