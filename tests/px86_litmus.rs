//! Px86 conformance: the named litmus corpus must pass under **both**
//! the operational machine (`jaaru::litmus`) and the independent
//! axiomatic reference checker (`jaaru_litmus::ax`), and the exhaustive
//! conformance sweep must be clean and byte-deterministic across
//! worker counts.
//!
//! These are the cross-crate guarantees the `litmus-smoke` CI job
//! relies on; the per-crate unit tests in `jaaru-litmus` cover the
//! axiom set itself.

use jaaru_litmus::ax::{AxChecker, AxOp, AxProgram};
use jaaru_litmus::conform::{self, Verdict};
use jaaru_litmus::corpus::{self, run_corpus_report, X, Y};
use jaaru_litmus::sweep::{run_sweep, SweepBound};

/// Every corpus entry's allowed/forbidden expectations hold under both
/// checkers, and the two outcome sets agree exactly.
#[test]
fn corpus_passes_under_both_checkers() {
    let report = run_corpus_report();
    for r in &report.results {
        assert!(r.passed(), "{}: {:?}", r.name, r.failures);
        assert!(r.conformant, "{}: checkers disagree", r.name);
    }
    assert!(report.is_clean());
}

/// The corpus names the paper's probes; renaming one silently would
/// orphan the CLI examples and the docs.
#[test]
fn corpus_covers_the_paper_probes() {
    let names: Vec<&str> = corpus::corpus().iter().map(|t| t.name).collect();
    for expected in [
        "sb",
        "sb+mfence",
        "sb+rmw",
        "mp",
        "flush-epoch",
        "flush-unfenced",
        "flushopt-reorders",
        "clwb-epoch",
        "rmw-orders-flush",
        "mp+persist",
    ] {
        assert!(names.contains(&expected), "missing corpus entry {expected}");
    }
}

/// Independent re-derivation of the store-buffering classic, without
/// going through the corpus plumbing: both checkers must allow the
/// relaxed 0/0 outcome, and mfence must remove it from both.
#[test]
fn store_buffering_agrees_across_checkers() {
    let sb = AxProgram {
        threads: vec![
            vec![AxOp::Store(X, 1), AxOp::Load(Y)],
            vec![AxOp::Store(Y, 1), AxOp::Load(X)],
        ],
    };
    let relaxed = vec![vec![0], vec![0]];
    for (p, expect) in [(sb.clone(), true), (fence(&sb), false)] {
        let ax = AxChecker::new(&p).allowed();
        let op = conform::operational_outcomes(&p);
        assert_eq!(ax, op, "checkers must agree on {p:?}");
        assert_eq!(
            ax.iter().any(|o| o.regs == relaxed),
            expect,
            "relaxed outcome of {p:?}"
        );
        assert_eq!(conform::check(&p), Verdict::Match);
    }
}

fn fence(p: &AxProgram) -> AxProgram {
    let threads = p
        .threads
        .iter()
        .map(|ops| {
            let mut fenced = Vec::new();
            for (i, &op) in ops.iter().enumerate() {
                fenced.push(op);
                if i + 1 < ops.len() {
                    fenced.push(AxOp::Mfence);
                }
            }
            fenced
        })
        .collect();
    AxProgram { threads }
}

/// The sweep report — counts, divergence list, fingerprint, and the
/// exact JSON bytes — is identical for 1, 2, and 4 worker threads.
#[test]
fn sweep_report_is_jobs_invariant() {
    let bound = SweepBound {
        max_threads: 2,
        max_ops_per_thread: 3,
        max_total_ops: 3,
    };
    let one = run_sweep(&bound, 1);
    assert!(one.is_clean(), "{}", one.to_text());
    assert!(one.programs > 1_000, "bound actually exercises the space");
    for jobs in [2, 4] {
        let parallel = run_sweep(&bound, jobs);
        assert_eq!(one, parallel, "report differs at jobs={jobs}");
        assert_eq!(
            one.to_json(),
            parallel.to_json(),
            "JSON bytes differ at jobs={jobs}"
        );
    }
}

/// Corpus JSON is byte-stable across runs (no wall-clock, no ambient
/// ordering), so served replies cache and diff cleanly.
#[test]
fn corpus_report_is_deterministic() {
    let a = run_corpus_report();
    let b = run_corpus_report();
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.to_text(), b.to_text());
}
