//! End-to-end reproduction of Figures 2 and 3: interval construction
//! during a pre-failure execution and refinement during recovery.
//!
//! The program is the paper's: `y=1; x=2; clflush(x); y=3; x=4; y=5;
//! x=6`, with `x` and `y` on the same cache line. After a failure, the
//! persistent values of `x` are constrained to `{2, 4, 6}` by the
//! `clflush`, and reading `x = 4` refines the writeback interval so `y`
//! can only be `3` or `5`.

use std::collections::BTreeSet;
use std::sync::Mutex;

use jaaru::{Config, ModelChecker, PmEnv};
use jaaru_workloads::synthetic::figure2_program;

fn checker() -> ModelChecker {
    let mut config = Config::new();
    config.pool_size(1 << 12);
    ModelChecker::new(config)
}

#[test]
fn figure2_program_is_consistent_under_exploration() {
    let report = checker().check(&figure2_program());
    assert!(report.is_clean(), "{report}");
}

/// The paper's Figure 2 claim: at the failure, x may read 2, 4 or 6
/// (never 0: the clflush pinned x=2 as the oldest possibility).
#[test]
fn x_values_match_figure2() {
    let observed = Mutex::new(BTreeSet::new());
    let program = |env: &dyn PmEnv| {
        let y = env.root();
        let x = y + 8;
        if env.is_recovery() {
            observed.lock().unwrap().insert(env.load_u64(x));
            return;
        }
        env.store_u64(y, 1);
        env.store_u64(x, 2);
        env.clflush(x, 8);
        env.store_u64(y, 3);
        env.store_u64(x, 4);
        env.store_u64(y, 5);
        env.store_u64(x, 6);
        // One trailing flush so the post-store failure point exists.
        env.clflush(x, 8);
        env.sfence();
    };
    let report = checker().check(&program);
    assert!(report.is_clean(), "{report}");
    let observed = observed.into_inner().unwrap();
    // Failures are also injected before the clflush itself, where x may
    // still be 0; at every later point the clflush pins x ∈ {2, 4, 6}.
    assert!(observed.contains(&2) && observed.contains(&4) && observed.contains(&6));
    assert!(observed.is_subset(&std::collections::BTreeSet::from([0, 2, 4, 6])));
}

/// The Figure 3 claim: in executions where x reads 4, y reads 3 or 5 —
/// never 1 (the writeback interval refined to [x=4, x=6)).
#[test]
fn y_refinement_matches_figure3() {
    let pairs = Mutex::new(BTreeSet::new());
    let program = |env: &dyn PmEnv| {
        let y = env.root();
        let x = y + 8;
        if env.is_recovery() {
            let rx = env.load_u64(x);
            let ry = env.load_u64(y);
            pairs.lock().unwrap().insert((rx, ry));
            return;
        }
        env.store_u64(y, 1);
        env.store_u64(x, 2);
        env.clflush(x, 8);
        env.store_u64(y, 3);
        env.store_u64(x, 4);
        env.store_u64(y, 5);
        env.store_u64(x, 6);
        env.clflush(x, 8);
        env.sfence();
    };
    let report = checker().check(&program);
    assert!(report.is_clean(), "{report}");
    let pairs = pairs.into_inner().unwrap();

    let y_given_x4: BTreeSet<u64> = pairs
        .iter()
        .filter(|&&(x, _)| x == 4)
        .map(|&(_, y)| y)
        .collect();
    assert_eq!(
        y_given_x4,
        BTreeSet::from([3, 5]),
        "Figure 3: y ∈ {{3, 5}} when x = 4"
    );

    // Every observed pair is a consistent snapshot of the store order;
    // the pre-clflush failure point contributes the first three, the
    // post-clflush points the rest (the red line of Figure 2).
    let legal = BTreeSet::from([(0u64, 0u64), (0, 1), (2, 1), (2, 3), (4, 3), (4, 5), (6, 5)]);
    assert_eq!(pairs, legal);
}

/// The refinement works symmetrically: committing y first constrains x.
#[test]
fn reading_y_first_constrains_x() {
    let pairs = Mutex::new(BTreeSet::new());
    let program = |env: &dyn PmEnv| {
        let y = env.root();
        let x = y + 8;
        if env.is_recovery() {
            let ry = env.load_u64(y); // y first this time
            let rx = env.load_u64(x);
            pairs.lock().unwrap().insert((rx, ry));
            return;
        }
        env.store_u64(y, 1);
        env.store_u64(x, 2);
        env.clflush(x, 8);
        env.store_u64(y, 3);
        env.store_u64(x, 4);
        env.store_u64(y, 5);
        env.store_u64(x, 6);
        env.clflush(x, 8);
        env.sfence();
    };
    let report = checker().check(&program);
    assert!(report.is_clean(), "{report}");
    let pairs = pairs.into_inner().unwrap();
    let legal = BTreeSet::from([(0u64, 0u64), (0, 1), (2, 1), (2, 3), (4, 3), (4, 5), (6, 5)]);
    assert_eq!(
        pairs, legal,
        "read order must not change the reachable snapshots"
    );
}
