//! Cross-crate integration tests for the Jaaru reproduction. The test
//! binaries in this package exercise the public APIs of every crate
//! together: the paper's worked examples (Figures 2–4), the Table 1
//! litmus probes, the RECIPE/PMDK bug sweeps, multi-failure scenarios,
//! the comparator tools, and the differential lazy-vs-eager property
//! tests.
