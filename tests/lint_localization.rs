//! Lint-engine localization sweep: for every seeded RECIPE/PMDK
//! missing-flush/fence-class fault, the persistency lint engine must
//! localize the symptom to the file the fault was seeded in — the
//! unordered store is reported with an error-severity diagnostic and a
//! concrete fix — and every *fixed* configuration must produce zero
//! diagnostics (the precision guard: the checker never cries wolf on
//! correct code).
//!
//! Row numbering matches `jaaru_cli list` (the paper's Figure 12/13
//! tables). Expected sites are file-granular: line numbers shift when
//! the workloads are edited, but a fault seeded in `cceh.rs` must be
//! blamed on a store in `cceh.rs`, not on the shared allocator or a
//! neighbouring structure.

use jaaru::{Config, DiagnosticKind, ModelChecker, PmEnv};
use jaaru_bench::registry::{
    pmdk_bug_cases, pmdk_fixed_cases, recipe_bug_cases, recipe_fixed_cases,
};

fn lint_config() -> Config {
    let mut c = Config::new();
    c.pool_size(1 << 18)
        .max_ops_per_execution(40_000)
        .max_scenarios(2_000)
        .lints(true)
        // The graph-based passes ride along everywhere: the workloads
        // are single-threaded and slot-aligned, so the sweeps double as
        // a precision guard for cross-thread and torn-store analysis.
        .lint_cross_thread(true)
        .lint_torn_stores(true);
    c
}

/// The file each seeded fault lives in, by (suite, row). `None` marks
/// the one fault that is not a flush/fence-ordering bug (P-BwTree's GC
/// retire-before-commit atomicity violation has no store-level fix).
fn expected_file(suite: &str, id: usize) -> Option<&'static str> {
    match (suite, id) {
        ("recipe", 1..=3) => Some("recipe/cceh.rs"),
        ("recipe", 4..=6) => Some("recipe/fast_fair.rs"),
        ("recipe", 7..=9) => Some("recipe/part.rs"),
        ("recipe", 10) => None,
        ("recipe", 11 | 12 | 14) => Some("recipe/pbwtree.rs"),
        ("recipe", 13) => Some("src/alloc.rs"),
        ("recipe", 15..=17) => Some("recipe/pclht.rs"),
        ("recipe", 18) => Some("recipe/pmasstree.rs"),
        ("pmdk", 1) => Some("pmdk/btree_map.rs"),
        ("pmdk", 2) => Some("pmdk/pool.rs"),
        ("pmdk", 3 | 5) => Some("pmdk/pmalloc.rs"),
        ("pmdk", 4) => Some("pmdk/ctree_map.rs"),
        ("pmdk", 6) => Some("pmdk/tx.rs"),
        ("pmdk", 7) => Some("pmdk/rbtree_map.rs"),
        _ => panic!("unknown row {suite} {id}"),
    }
}

fn sweep(suite: &str, cases: Vec<jaaru_bench::registry::BugCase>) {
    for case in cases {
        let report = ModelChecker::new(lint_config()).check(&*case.program);
        assert!(
            !report.is_clean(),
            "{suite} row {}: the seeded bug must still be found",
            case.id
        );
        let Some(file) = expected_file(suite, case.id) else {
            continue;
        };
        let errors: Vec<String> = report
            .diagnostics
            .iter()
            .filter(|d| d.is_error())
            .map(|d| d.to_string())
            .collect();
        assert!(
            errors.iter().any(|e| e.contains(file)),
            "{suite} row {} ({}): no error diagnostic localizes to {file}; got {errors:#?}",
            case.id,
            case.cause,
        );
    }
}

#[test]
fn recipe_faults_localize_to_the_seeded_file() {
    sweep("recipe", recipe_bug_cases(4));
}

#[test]
fn pmdk_faults_localize_to_the_seeded_file() {
    sweep("pmdk", pmdk_bug_cases(4));
}

#[test]
fn fixed_configurations_produce_zero_diagnostics() {
    for (name, program) in recipe_fixed_cases(4).into_iter().chain(pmdk_fixed_cases(4)) {
        let report = ModelChecker::new(lint_config()).check(&*program);
        assert!(report.is_clean(), "{name} must be crash consistent");
        assert!(
            report.diagnostics.is_empty(),
            "{name}: fixed configuration must lint clean, got {:#?}",
            report.diagnostics
        );
    }
}

/// The closure-program cases below pin the cross-thread and torn-store
/// passes to source-exact sites: each planted hazard must be blamed on
/// a line in *this* file, with the shape-specific fix suggestion.
fn graph_lint_config() -> Config {
    let mut c = Config::new();
    c.pool_size(4096)
        .lint_cross_thread(true)
        .lint_torn_stores(true);
    c
}

#[test]
fn flush_on_another_thread_is_localized_here() {
    // Crash-consistent under the deterministic run-to-completion
    // schedule, but the flush covering the store runs on a spawned
    // thread with no synchronizing edge: shape 1 of the race pass.
    let program = |env: &dyn PmEnv| {
        let root = env.root();
        let data = root + 64;
        if env.is_recovery() {
            let _ = env.load_u64(data);
            return;
        }
        env.store_u64(data, 7);
        env.spawn(&mut |t| t.clflush(data, 8));
        env.sfence();
    };
    let report = ModelChecker::new(graph_lint_config()).check(&program);
    assert!(report.is_clean(), "{report}");
    let races: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.kind == DiagnosticKind::CrossThreadRace)
        .collect();
    assert!(!races.is_empty(), "{:#?}", report.diagnostics);
    assert!(
        races
            .iter()
            .all(|d| d.site.contains("lint_localization.rs")),
        "{races:#?}"
    );
    assert!(
        races[0].message.contains("flush on the storing thread"),
        "{races:#?}"
    );
}

#[test]
fn fence_on_the_wrong_thread_is_localized_here() {
    // A clflushopt parked in the spawned thread's flush buffer while
    // only the main thread fences afterwards: shape 2 of the race pass,
    // blamed on the flush.
    let program = |env: &dyn PmEnv| {
        let root = env.root();
        let data = root + 64;
        if env.is_recovery() {
            let _ = env.load_u64(data);
            return;
        }
        env.spawn(&mut |t| {
            t.store_u64(data, 7);
            t.clflushopt(data, 8);
            // No fence on this thread: the flush stays parked forever.
        });
        env.sfence(); // drains only the main thread's (empty) buffer
    };
    let report = ModelChecker::new(graph_lint_config()).check(&program);
    assert!(report.is_clean(), "{report}");
    let races: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.kind == DiagnosticKind::CrossThreadRace)
        .collect();
    assert!(!races.is_empty(), "{:#?}", report.diagnostics);
    assert!(races[0].site.contains("lint_localization.rs"), "{races:#?}");
    assert!(races[0].message.contains("fence on thread 1"), "{races:#?}");
}

#[test]
fn torn_straddling_store_is_confirmed_by_the_failing_recovery() {
    const WIDE: u64 = 0x1111_2222_3333_4444;
    // An 8-byte store straddling two cache lines, only the low line
    // flushed before the commit store: a committed recovery can read
    // the value half-old, half-new. The bug manifests, and the torn
    // pass must localize the straddling store through the read-from
    // evidence of the failing scenario.
    let program = |env: &dyn PmEnv| {
        let root = env.root();
        let commit = root;
        let data = root + 64 + 60; // last 4 bytes of one line + 4 of the next
        if env.is_recovery() {
            if env.load_u64(commit) == 1 {
                env.pm_assert(env.load_u64(data) == WIDE, "torn value observed");
            }
            return;
        }
        env.store_u64(data, WIDE);
        env.clflush(root + 64, 64); // low half only; the next line is never flushed
        env.sfence();
        env.store_u64(commit, 1);
        env.clflush(commit, 8);
        env.sfence();
    };
    let report = ModelChecker::new(graph_lint_config()).check(&program);
    assert!(!report.is_clean(), "the torn window must manifest");
    let torn: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.kind == DiagnosticKind::TornStore)
        .collect();
    assert!(!torn.is_empty(), "{:#?}", report.diagnostics);
    assert!(torn[0].site.contains("lint_localization.rs"), "{torn:#?}");
    assert!(torn[0].message.contains("never persists"), "{torn:#?}");
}
