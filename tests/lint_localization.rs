//! Lint-engine localization sweep: for every seeded RECIPE/PMDK
//! missing-flush/fence-class fault, the persistency lint engine must
//! localize the symptom to the file the fault was seeded in — the
//! unordered store is reported with an error-severity diagnostic and a
//! concrete fix — and every *fixed* configuration must produce zero
//! diagnostics (the precision guard: the checker never cries wolf on
//! correct code).
//!
//! Row numbering matches `jaaru_cli list` (the paper's Figure 12/13
//! tables). Expected sites are file-granular: line numbers shift when
//! the workloads are edited, but a fault seeded in `cceh.rs` must be
//! blamed on a store in `cceh.rs`, not on the shared allocator or a
//! neighbouring structure.

use jaaru::{Config, ModelChecker};
use jaaru_bench::registry::{
    pmdk_bug_cases, pmdk_fixed_cases, recipe_bug_cases, recipe_fixed_cases,
};

fn lint_config() -> Config {
    let mut c = Config::new();
    c.pool_size(1 << 18)
        .max_ops_per_execution(40_000)
        .max_scenarios(2_000)
        .lints(true);
    c
}

/// The file each seeded fault lives in, by (suite, row). `None` marks
/// the one fault that is not a flush/fence-ordering bug (P-BwTree's GC
/// retire-before-commit atomicity violation has no store-level fix).
fn expected_file(suite: &str, id: usize) -> Option<&'static str> {
    match (suite, id) {
        ("recipe", 1..=3) => Some("recipe/cceh.rs"),
        ("recipe", 4..=6) => Some("recipe/fast_fair.rs"),
        ("recipe", 7..=9) => Some("recipe/part.rs"),
        ("recipe", 10) => None,
        ("recipe", 11 | 12 | 14) => Some("recipe/pbwtree.rs"),
        ("recipe", 13) => Some("src/alloc.rs"),
        ("recipe", 15..=17) => Some("recipe/pclht.rs"),
        ("recipe", 18) => Some("recipe/pmasstree.rs"),
        ("pmdk", 1) => Some("pmdk/btree_map.rs"),
        ("pmdk", 2) => Some("pmdk/pool.rs"),
        ("pmdk", 3 | 5) => Some("pmdk/pmalloc.rs"),
        ("pmdk", 4) => Some("pmdk/ctree_map.rs"),
        ("pmdk", 6) => Some("pmdk/tx.rs"),
        ("pmdk", 7) => Some("pmdk/rbtree_map.rs"),
        _ => panic!("unknown row {suite} {id}"),
    }
}

fn sweep(suite: &str, cases: Vec<jaaru_bench::registry::BugCase>) {
    for case in cases {
        let report = ModelChecker::new(lint_config()).check(&*case.program);
        assert!(
            !report.is_clean(),
            "{suite} row {}: the seeded bug must still be found",
            case.id
        );
        let Some(file) = expected_file(suite, case.id) else {
            continue;
        };
        let errors: Vec<String> = report
            .diagnostics
            .iter()
            .filter(|d| d.is_error())
            .map(|d| d.to_string())
            .collect();
        assert!(
            errors.iter().any(|e| e.contains(file)),
            "{suite} row {} ({}): no error diagnostic localizes to {file}; got {errors:#?}",
            case.id,
            case.cause,
        );
    }
}

#[test]
fn recipe_faults_localize_to_the_seeded_file() {
    sweep("recipe", recipe_bug_cases(4));
}

#[test]
fn pmdk_faults_localize_to_the_seeded_file() {
    sweep("pmdk", pmdk_bug_cases(4));
}

#[test]
fn fixed_configurations_produce_zero_diagnostics() {
    for (name, program) in recipe_fixed_cases(4).into_iter().chain(pmdk_fixed_cases(4)) {
        let report = ModelChecker::new(lint_config()).check(&*program);
        assert!(report.is_clean(), "{name} must be crash consistent");
        assert!(
            report.diagnostics.is_empty(),
            "{name}: fixed configuration must lint clean, got {:#?}",
            report.diagnostics
        );
    }
}
