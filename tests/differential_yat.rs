//! Differential soundness/completeness testing: Jaaru's lazy
//! constraint-refinement exploration against the Yat-style eager
//! enumerator, on randomized straight-line PM programs.
//!
//! The paper claims Jaaru "does not generate any false positives or
//! negatives — it reports all bugs w.r.t. an input and any bug it
//! reports must be a real bug". The checkable core of that claim: for
//! every crash point, the *set of value vectors a recovery execution
//! can observe* must be identical between lazy exploration (one
//! execution per reads-from equivalence class, intervals refined on the
//! fly) and eager exploration (every legal post-failure memory state
//! materialized). This test generates random pre-failure programs —
//! stores of mixed sizes, `clflush`, `clflushopt`, `sfence`, `mfence` —
//! and compares the observation sets exactly.
//!
//! Programs are generated with a seeded SplitMix64 generator (the
//! workspace builds offline, so no proptest); a failing case prints the
//! seed and op list that reproduce it.

use std::collections::BTreeSet;
use std::sync::Mutex;

use jaaru::{Config, ModelChecker, PmEnv};
use jaaru_yat::{eager_check, YatConfig};

const POOL: usize = 4096;
/// Eight observed byte slots spread over three cache lines.
const SLOTS: [u64; 8] = [64, 72, 80, 120, 128, 136, 184, 191];

struct Rng {
    state: u64,
}

impl Rng {
    fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

#[derive(Clone, Debug)]
enum Op {
    Store8(usize, u8),
    Store16(usize, u16),
    Store64(usize, u64),
    Clflush(usize),
    Clflushopt(usize),
    Sfence,
    Mfence,
}

fn random_op(rng: &mut Rng) -> Op {
    let slot = rng.below(SLOTS.len() as u64) as usize;
    match rng.below(7) {
        0 => Op::Store8(slot, (1 + rng.below(255)) as u8),
        1 => Op::Store16(slot, (1 + rng.below(9999)) as u16),
        2 => Op::Store64(slot, 1 + rng.below(u64::MAX - 1)),
        3 => Op::Clflush(slot),
        4 => Op::Clflushopt(slot),
        5 => Op::Sfence,
        _ => Op::Mfence,
    }
}

fn replay(env: &dyn PmEnv, ops: &[Op]) {
    for op in ops {
        match *op {
            Op::Store8(s, v) => env.store_u8(jaaru::PmAddr::new(SLOTS[s]), v),
            // Wider stores clamp to stay inside the observed region.
            Op::Store16(s, v) => env.store_u16(jaaru::PmAddr::new(SLOTS[s].min(184)), v),
            Op::Store64(s, v) => env.store_u64(jaaru::PmAddr::new(SLOTS[s].min(184)), v),
            Op::Clflush(s) => env.clflush(jaaru::PmAddr::new(SLOTS[s]), 1),
            Op::Clflushopt(s) => env.clflushopt(jaaru::PmAddr::new(SLOTS[s]), 1),
            Op::Sfence => env.sfence(),
            Op::Mfence => env.mfence(),
        }
    }
}

fn observe(env: &dyn PmEnv) -> Vec<u8> {
    SLOTS
        .iter()
        .map(|&a| env.load_u8(jaaru::PmAddr::new(a)))
        .collect()
}

/// All recovery observation vectors under Jaaru's lazy exploration.
fn jaaru_observations(ops: &[Op]) -> BTreeSet<Vec<u8>> {
    let observed = Mutex::new(BTreeSet::new());
    let program = |env: &dyn PmEnv| {
        if env.is_recovery() {
            observed.lock().unwrap().insert(observe(env));
        } else {
            replay(env, ops);
        }
    };
    let mut config = Config::new();
    config.pool_size(POOL).flag_races(false);
    let report = ModelChecker::new(config).check(&program);
    assert!(
        report.is_clean(),
        "observation program has no assertions: {report}"
    );
    observed.into_inner().unwrap()
}

/// All recovery observation vectors under eager state enumeration.
fn yat_observations(ops: &[Op]) -> BTreeSet<Vec<u8>> {
    let observed = Mutex::new(BTreeSet::new());
    let program = |env: &dyn PmEnv| {
        if env.is_recovery() {
            observed.lock().unwrap().insert(observe(env));
        } else {
            replay(env, ops);
        }
    };
    let mut config = YatConfig::new();
    config.pool_size = POOL;
    let report = eager_check(&program, &config);
    assert!(
        report.is_clean(),
        "observation program has no assertions: {report:?}"
    );
    assert!(
        !report.truncated,
        "eager run must be exhaustive for the comparison"
    );
    observed.into_inner().unwrap()
}

/// The paper's no-false-positives/negatives claim, checked
/// differentially: lazy and eager exploration observe identical
/// post-failure value sets.
#[test]
fn lazy_and_eager_observe_identical_crash_states() {
    for seed in 0..96u64 {
        let mut rng = Rng::new(seed);
        let len = 1 + rng.below(13);
        let ops: Vec<Op> = (0..len).map(|_| random_op(&mut rng)).collect();
        let lazy = jaaru_observations(&ops);
        let eager = yat_observations(&ops);
        assert_eq!(
            &lazy,
            &eager,
            "seed {seed}: observation sets diverge for {:?}\n lazy-only: {:?}\n eager-only: {:?}",
            ops,
            lazy.difference(&eager).collect::<Vec<_>>(),
            eager.difference(&lazy).collect::<Vec<_>>()
        );
    }
}

/// A handful of fixed program shapes checked exhaustively.
#[test]
fn fixed_program_shapes_agree() {
    let programs: Vec<Vec<Op>> = vec![
        // The Figure 2 shape: interleaved stores on one line, one flush.
        vec![
            Op::Store8(1, 1),
            Op::Store8(0, 2),
            Op::Clflush(0),
            Op::Store8(1, 3),
            Op::Store8(0, 4),
            Op::Store8(1, 5),
            Op::Store8(0, 6),
        ],
        // Unfenced clflushopt must not constrain anything.
        vec![Op::Store8(0, 7), Op::Clflushopt(0), Op::Store8(0, 8)],
        // Fenced clflushopt pins the first store.
        vec![
            Op::Store8(0, 7),
            Op::Clflushopt(0),
            Op::Sfence,
            Op::Store8(0, 8),
        ],
        // Cross-line ordering with a straddling store.
        vec![
            Op::Store64(3, 0xa5a5_a5a5_a5a5_a5a5),
            Op::Clflush(3),
            Op::Store16(3, 9),
        ],
        // mfence applies deferred flushes.
        vec![
            Op::Store8(4, 1),
            Op::Clflushopt(4),
            Op::Mfence,
            Op::Store8(4, 2),
        ],
    ];
    for ops in programs {
        assert_eq!(
            jaaru_observations(&ops),
            yat_observations(&ops),
            "shape: {ops:?}"
        );
    }
}

/// Observation sets are insensitive to race flagging (pure diagnostics).
#[test]
fn race_flagging_does_not_change_exploration() {
    let ops = vec![
        Op::Store8(0, 1),
        Op::Store8(1, 2),
        Op::Clflush(0),
        Op::Store8(0, 3),
    ];
    let observed = Mutex::new(BTreeSet::new());
    let program = |env: &dyn PmEnv| {
        if env.is_recovery() {
            observed.lock().unwrap().insert(observe(env));
        } else {
            replay(env, &ops);
        }
    };
    let mut with_races = Config::new();
    with_races.pool_size(POOL).flag_races(true);
    let a = ModelChecker::new(with_races).check(&program);
    let first = observed.lock().unwrap().clone();
    observed.lock().unwrap().clear();
    let mut without = Config::new();
    without.pool_size(POOL).flag_races(false);
    let b = ModelChecker::new(without).check(&program);
    assert_eq!(first, *observed.lock().unwrap());
    assert_eq!(a.stats.scenarios, b.stats.scenarios);
}
