//! End-to-end reproduction of the Figure 4 walkthrough (§3.2): the
//! commit-store pattern and the execution counts Jaaru's lazy
//! exploration achieves on it.

use std::collections::BTreeSet;
use std::sync::Mutex;

use jaaru::{Config, ModelChecker, PmEnv};
use jaaru_workloads::synthetic::{figure4_no_commit_check_program, figure4_program};

fn checker() -> ModelChecker {
    let mut config = Config::new();
    config.pool_size(1 << 12);
    ModelChecker::new(config)
}

/// The paper's walkthrough: failures before each clflush plus the end of
/// `addChild` (3 points), with 1, 2 and 1 post-failure executions
/// respectively → 5 scenarios including the clean run.
#[test]
fn walkthrough_execution_counts() {
    let report = checker().check(&figure4_program());
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.stats.failure_points, 3);
    assert_eq!(report.stats.scenarios, 5, "{report}");
}

/// The commit store bounds exploration: reading `data` without checking
/// the commit (the §3.2 anti-pattern) explores *more* executions and is
/// buggy.
#[test]
fn no_commit_check_explores_more_and_fails() {
    let with_commit = checker().check(&figure4_program());
    let without = checker().check(&figure4_no_commit_check_program());
    assert!(
        !without.is_clean(),
        "reading uncommitted data is a bug: {without}"
    );
    assert!(
        without.stats.executions >= with_commit.stats.executions,
        "skipping the commit check cannot shrink the exploration: {} vs {}",
        without.stats.executions,
        with_commit.stats.executions
    );
}

/// Scaling the anti-pattern (§3.2): with n unflushed cache lines read
/// unconditionally, exploration grows with n — while the commit-store
/// version stays flat. (The eager equivalent would grow as 2^n.)
#[test]
fn commit_store_keeps_exploration_flat() {
    fn program(n: u64, check_commit: bool) -> impl jaaru::Program {
        move |env: &dyn PmEnv| {
            let commit = env.root();
            let data = commit + 64;
            if env.is_recovery() {
                if !check_commit || env.load_u64(commit) == 1 {
                    for i in 0..n {
                        let v = env.load_u64(data + i * 64);
                        if check_commit {
                            env.pm_assert(v == i + 1, "committed line lost");
                        } else {
                            env.pm_assert(v == 0 || v == i + 1, "torn line");
                        }
                    }
                }
                return;
            }
            for i in 0..n {
                env.store_u64(data + i * 64, i + 1);
            }
            env.clflush(data, (n * 64) as usize);
            env.sfence();
            env.store_u64(commit, 1);
            env.persist(commit, 8);
        }
    }

    let mut commit_counts = Vec::new();
    let mut raw_counts = Vec::new();
    for n in [1u64, 2, 4, 6] {
        let c = checker().check(&program(n, true));
        assert!(c.is_clean(), "{c}");
        commit_counts.push(c.stats.executions);
        let r = checker().check(&program(n, false));
        assert!(r.is_clean(), "{r}");
        raw_counts.push(r.stats.executions);
    }
    // Commit-store exploration is flat in n (same few equivalence
    // classes); unconditional reads grow with n.
    assert!(
        commit_counts.windows(2).all(|w| w[1] <= w[0] + 2),
        "commit-store exploration should stay flat: {commit_counts:?}"
    );
    assert!(
        raw_counts.last().unwrap() > raw_counts.first().unwrap(),
        "unconditional reads must grow with n: {raw_counts:?}"
    );
}

/// The three outcomes the walkthrough enumerates are exactly the
/// observable recovery behaviours.
#[test]
fn observable_outcomes_match_walkthrough() {
    let outcomes = Mutex::new(BTreeSet::new());
    let program = |env: &dyn PmEnv| {
        let child_ptr = env.root();
        let child = child_ptr + 64;
        if env.is_recovery() {
            let p = env.load_addr(child_ptr);
            if p.is_null() {
                outcomes.lock().unwrap().insert("null");
            } else {
                let data = env.load_u64(p);
                assert_eq!(data, 42, "committed data must be intact");
                outcomes.lock().unwrap().insert("data");
            }
            return;
        }
        env.store_u64(child, 42);
        env.clflush(child, 8);
        env.store_addr(child_ptr, child);
        env.clflush(child_ptr, 8);
        env.sfence();
    };
    let report = checker().check(&program);
    assert!(report.is_clean(), "{report}");
    assert_eq!(
        outcomes.into_inner().unwrap(),
        BTreeSet::from(["null", "data"])
    );
}
