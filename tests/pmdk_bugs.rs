//! Figure 12 end-to-end: the seven seeded PMDK-stack bugs are found
//! through the example maps, the fixed configurations are clean, and
//! the symptoms match Figure 16's classes.

use jaaru::{BugKind, Config, ModelChecker};
use jaaru_workloads::pmdk::{
    btree_map::{self, BtreeMap},
    ctree_map::{self, CtreeMap},
    hashmap_atomic::{self, HashmapAtomic},
    hashmap_tx::{self, HashmapTx},
    rbtree_map::{self, RbtreeMap},
    MapWorkload, PmdkFaults, PmdkMap,
};

fn config() -> Config {
    let mut c = Config::new();
    c.pool_size(1 << 18)
        .max_ops_per_execution(20_000)
        .max_scenarios(2_000);
    c
}

fn check<M: PmdkMap>(faults: PmdkFaults, n: usize) -> jaaru::CheckReport {
    ModelChecker::new(config()).check(&MapWorkload::<M>::new(faults, n))
}

#[test]
fn all_fixed_pmdk_maps_are_clean() {
    assert!(check::<BtreeMap>(PmdkFaults::default(), 5).is_clean());
    assert!(check::<CtreeMap>(PmdkFaults::default(), 5).is_clean());
    assert!(check::<RbtreeMap>(PmdkFaults::default(), 4).is_clean());
    assert!(check::<HashmapAtomic>(PmdkFaults::default(), 5).is_clean());
    assert!(check::<HashmapTx>(PmdkFaults::default(), 4).is_clean());
}

#[test]
fn all_7_seeded_pmdk_bugs_are_found() {
    let cases: Vec<(&str, jaaru::CheckReport)> = vec![
        (
            "bug1 btree item ptr",
            check::<BtreeMap>(btree_map::bug1_faults(), 4),
        ),
        (
            "bug2 pool checksum",
            check::<BtreeMap>(btree_map::bug2_faults(), 4),
        ),
        (
            "bug3 heap block header",
            check::<HashmapAtomic>(hashmap_atomic::bug3_faults(), 4),
        ),
        (
            "bug4 ctree atomicity",
            check::<CtreeMap>(ctree_map::bug4_faults(), 5),
        ),
        (
            "bug5 pmalloc cursor",
            check::<HashmapAtomic>(hashmap_atomic::bug5_faults(), 4),
        ),
        (
            "bug6 tx log entry",
            check::<HashmapTx>(hashmap_tx::bug6_faults(), 4),
        ),
        (
            "bug7 rbtree counter",
            check::<RbtreeMap>(rbtree_map::bug7_faults(), 4),
        ),
    ];
    for (name, report) in &cases {
        assert!(!report.is_clean(), "{name} not found");
    }
}

#[test]
fn figure16_symptom_classes() {
    // Illegal memory access (bugs 1, 6-adjacent).
    let r = check::<BtreeMap>(btree_map::bug1_faults(), 4);
    assert!(
        r.bugs.iter().any(|b| b.kind == BugKind::IllegalAccess),
        "{r}"
    );

    // Failed to open pool (bug 2).
    let r = check::<BtreeMap>(btree_map::bug2_faults(), 4);
    assert!(
        r.bugs
            .iter()
            .any(|b| b.message.contains("Failed to open pool")),
        "{r}"
    );

    // heap.c / pmalloc.c / tx.c assertion sites (bugs 3, 5, 7).
    let r = check::<HashmapAtomic>(hashmap_atomic::bug3_faults(), 4);
    assert!(
        r.bugs.iter().any(|b| b.message.contains("heap.c:533")),
        "{r}"
    );
    let r = check::<HashmapAtomic>(hashmap_atomic::bug5_faults(), 4);
    assert!(
        r.bugs.iter().any(|b| b.message.contains("pmalloc.c:270")),
        "{r}"
    );
    let r = check::<RbtreeMap>(rbtree_map::bug7_faults(), 4);
    assert!(
        r.bugs.iter().any(|b| b.message.contains("tx.c:1678")),
        "{r}"
    );
}

#[test]
fn bugs_live_in_the_library_not_the_examples() {
    // The paper: "the majority of these bugs are in the core libpmemobj
    // library ... the examples merely have served as test cases". The
    // allocator faults manifest identically through a *different* map.
    let via_btree = {
        let faults = PmdkFaults {
            pmalloc: jaaru_workloads::pmdk::pmalloc::PmallocFault {
                skip_header_flush: true,
                skip_cursor_flush: false,
            },
            ..PmdkFaults::default()
        };
        check::<BtreeMap>(faults, 4)
    };
    assert!(
        via_btree
            .bugs
            .iter()
            .any(|b| b.message.contains("heap.c:533")),
        "the heap-walk bug reproduces through btree too: {via_btree}"
    );
}
