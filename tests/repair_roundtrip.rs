//! Repair-synthesis roundtrip sweep: every seeded RECIPE/PMDK
//! flush/fence-class fault must auto-repair — the synthesizer derives a
//! verified, 1-minimal edit set whose application makes the program
//! crash consistent *and* lint clean under the same configuration that
//! diagnosed it. The faults with no flush/fence-level fix (see
//! [`store_level_fix_exists`]) must be refused, not papered over:
//! repair synthesis never claims a fix it cannot prove.
//!
//! Determinism rides along: edit sets, JSON artifacts, SARIF fixes, and
//! repaired-report digests must be byte-identical across `--jobs`
//! settings, and every committed fuzz-corpus reproducer must
//! auto-repair through the same entry point the `fuzz --repair` loop
//! uses.

use std::path::Path;

use jaaru::{
    synthesize_repair, to_sarif_with_verified, CheckReport, Config, ModelChecker, RepairedProgram,
};
use jaaru_bench::registry::{pmdk_bug_cases, recipe_bug_cases, BugCase};
use jaaru_fuzz::{load_dir, repair_seeded, Reproducer};

/// Same knobs as the lint-localization sweep (`lint_localization.rs`),
/// and the same pass set as `jaaru_cli repair`: robustness lints plus
/// the cross-thread and torn-store graph passes, but *not* the
/// flush-redundancy pass — repair must converge on the
/// crash-consistency fix, not chase advisory warnings about flushes the
/// workloads emit on purpose.
fn repair_config(jobs: usize) -> Config {
    let mut c = Config::new();
    c.pool_size(1 << 18)
        .max_ops_per_execution(40_000)
        .max_scenarios(2_000)
        .jobs(jobs)
        .lints(true)
        .lint_cross_thread(true)
        .lint_torn_stores(true);
    c
}

/// Rows with no store-level flush/fence fix, which repair synthesis
/// must *refuse* to verify rather than paper over:
///
/// * recipe 9 (P-ART volatile recovery set): the lock words are stored
///   unflushed and may persist spontaneously at a crash; only the
///   recovery-side lock sweep — an algorithmic change — fixes it.
/// * recipe 10 (P-BwTree GC retire-before-commit): an atomicity
///   violation in the retire ordering, not a persist-ordering bug.
/// * pmdk 7 (rbtree counter outside the transaction): the unlogged
///   counter bump may persist while the rollback restores the link;
///   the fix is `tx_add_range` logging, not a flush or fence.
fn store_level_fix_exists(suite: &str, id: usize) -> bool {
    !matches!((suite, id), ("recipe", 9 | 10) | ("pmdk", 7))
}

/// The file each seeded fault lives in, by (suite, row); mirrors the
/// lint-localization map.
fn expected_file(suite: &str, id: usize) -> Option<&'static str> {
    match (suite, id) {
        ("recipe", 1..=3) => Some("recipe/cceh.rs"),
        ("recipe", 4..=6) => Some("recipe/fast_fair.rs"),
        ("recipe", 7..=9) => Some("recipe/part.rs"),
        ("recipe", 10) => None,
        ("recipe", 11 | 12 | 14) => Some("recipe/pbwtree.rs"),
        ("recipe", 13) => Some("src/alloc.rs"),
        ("recipe", 15..=17) => Some("recipe/pclht.rs"),
        ("recipe", 18) => Some("recipe/pmasstree.rs"),
        ("pmdk", 1) => Some("pmdk/btree_map.rs"),
        ("pmdk", 2) => Some("pmdk/pool.rs"),
        ("pmdk", 3 | 5) => Some("pmdk/pmalloc.rs"),
        ("pmdk", 4) => Some("pmdk/ctree_map.rs"),
        ("pmdk", 6) => Some("pmdk/tx.rs"),
        ("pmdk", 7) => Some("pmdk/rbtree_map.rs"),
        _ => panic!("unknown row {suite} {id}"),
    }
}

/// The repair success predicate, restated independently of the
/// synthesizer so the minimality probes below cannot inherit one of its
/// bugs: crash consistent, no error diagnostic, and nothing left that
/// carries an applicable edit.
fn is_fixed(report: &CheckReport) -> bool {
    report.is_clean()
        && report
            .diagnostics
            .iter()
            .all(|d| !d.is_error() && d.suggestion.is_none())
}

fn sweep(suite: &str, cases: Vec<BugCase>) {
    for case in cases {
        let config = repair_config(1);
        let outcome = synthesize_repair(&config, &*case.program);
        assert!(
            !outcome.baseline.is_clean(),
            "{suite} row {}: the seeded bug must manifest before repair",
            case.id
        );
        if !store_level_fix_exists(suite, case.id) {
            // No flush/fence fix exists: the synthesizer must give up
            // rather than report an unproven repair.
            assert!(
                !outcome.verified,
                "{suite} row {} ({}): verified a repair for a fault with no \
                 store-level fix; edits {:?}",
                case.id, case.cause, outcome.edits
            );
            continue;
        }
        let file = expected_file(suite, case.id).expect("repairable rows have a seeded file");
        assert!(
            outcome.verified,
            "{suite} row {} ({}): no verified repair; {} rounds, {} rechecks, \
             diagnosed {:#?}",
            case.id, case.cause, outcome.rounds, outcome.rechecks, outcome.diagnosed
        );
        assert!(
            !outcome.edits.is_empty(),
            "{suite} row {}: a buggy baseline cannot repair to the empty set",
            case.id
        );
        assert!(
            outcome.edits.iter().any(|e| e.site().contains(file)),
            "{suite} row {} ({}): no edit lands in {file}; got {:#?}",
            case.id,
            case.cause,
            outcome.edits
        );

        // The repaired program is crash consistent and lint clean.
        let repaired = outcome
            .repaired
            .as_ref()
            .expect("verified => final report present");
        assert!(repaired.is_clean(), "{suite} row {}", case.id);
        assert!(
            repaired.diagnostics.iter().all(|d| !d.is_error()),
            "{suite} row {}: repaired program must lint clean, got {:#?}",
            case.id,
            repaired.diagnostics
        );

        // 1-minimality. For single-edit repairs the baseline already
        // witnesses that the empty set fails; for multi-edit repairs,
        // dropping any one edit must re-break the program.
        if outcome.edits.len() > 1 {
            for i in 0..outcome.edits.len() {
                let mut subset = outcome.edits.clone();
                let dropped = subset.remove(i);
                let probe = RepairedProgram::new(&*case.program, &subset);
                let report = ModelChecker::new(repair_config(1)).check(&probe);
                assert!(
                    !is_fixed(&report),
                    "{suite} row {}: edit set not minimal — dropping {dropped} \
                     still verifies",
                    case.id
                );
            }
        }
    }
}

#[test]
fn recipe_faults_auto_repair_to_verified_minimal_edits() {
    sweep("recipe", recipe_bug_cases(4));
}

#[test]
fn pmdk_faults_auto_repair_to_verified_minimal_edits() {
    sweep("pmdk", pmdk_bug_cases(4));
}

/// Repair is deterministic across worker counts: same edits, same JSON
/// artifact bytes, same SARIF fixes, and the repaired program's report
/// digest is worker-invariant.
#[test]
fn repair_is_deterministic_across_jobs() {
    for (suite, row) in [("recipe", 1), ("pmdk", 1)] {
        let outcomes: Vec<_> = [1usize, 2, 4]
            .into_iter()
            .map(|jobs| {
                let cases = match suite {
                    "recipe" => recipe_bug_cases(4),
                    _ => pmdk_bug_cases(4),
                };
                let case = cases.into_iter().find(|c| c.id == row).expect("row exists");
                synthesize_repair(&repair_config(jobs), &*case.program)
            })
            .collect();
        let baseline = &outcomes[0];
        assert!(baseline.verified, "{suite} row {row}");
        for other in &outcomes[1..] {
            assert_eq!(baseline.edits, other.edits, "{suite} row {row}");
            assert_eq!(
                baseline.to_json(),
                other.to_json(),
                "{suite} row {row}: JSON artifact must be byte-identical"
            );
            assert_eq!(
                to_sarif_with_verified(&baseline.diagnosed, "test", &baseline.edits),
                to_sarif_with_verified(&other.diagnosed, "test", &other.edits),
                "{suite} row {row}: SARIF fixes must be byte-identical"
            );
            assert_eq!(
                baseline.repaired.as_ref().map(CheckReport::digest),
                other.repaired.as_ref().map(CheckReport::digest),
                "{suite} row {row}: repaired report digest must be worker-invariant"
            );
        }
    }
}

fn corpus() -> Vec<Reproducer> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let corpus = load_dir(&dir).expect("corpus parses");
    assert!(!corpus.is_empty(), "committed corpus must not be empty");
    corpus
}

/// Every committed fuzz reproducer — a minimized seeded-fault program
/// harvested from a campaign — auto-repairs through the same entry
/// point `jaaru_cli fuzz --repair` uses. Generated programs funnel all
/// stores through one interpreter line, so this also pins the
/// cache-line anchoring of edits.
#[test]
fn every_corpus_reproducer_auto_repairs() {
    for repro in corpus() {
        let outcome = repair_seeded(&repro.program, 1);
        assert!(
            outcome.verified,
            "{}: reproducer unrepaired; diagnosed {:#?}",
            repro.name, outcome.diagnosed
        );
        assert!(!outcome.edits.is_empty(), "{}", repro.name);
    }
}

/// Spot-check the differential-oracle claim on one reproducer: the
/// repair and its artifact are identical whether the re-checks run on
/// 1, 2, or 4 workers.
#[test]
fn corpus_repair_matches_across_jobs() {
    let repro = &corpus()[0];
    let one = repair_seeded(&repro.program, 1);
    assert!(one.verified, "{}", repro.name);
    for jobs in [2usize, 4] {
        let other = repair_seeded(&repro.program, jobs);
        assert_eq!(one.edits, other.edits, "{}", repro.name);
        assert_eq!(one.to_json(), other.to_json(), "{}", repro.name);
        assert_eq!(
            one.repaired.as_ref().map(CheckReport::digest),
            other.repaired.as_ref().map(CheckReport::digest),
            "{}",
            repro.name
        );
    }
}
