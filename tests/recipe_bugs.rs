//! Figure 13 end-to-end: every seeded RECIPE bug is found, every fixed
//! configuration is clean, and the Figure 15 symptom classes line up.
//! (The per-fault fine-grained assertions live in each structure's unit
//! tests; this is the cross-crate sweep the paper's artifact scripts
//! run.)

use jaaru::{BugKind, Config, ModelChecker};
use jaaru_workloads::recipe::{
    cceh::{Cceh, CcehFault},
    fast_fair::{FastFair, FastFairFault},
    part::{Part, PartFault},
    pbwtree::{Pbwtree, PbwtreeFault},
    pclht::{Pclht, PclhtFault},
    pmasstree::{Pmasstree, PmasstreeFault},
    IndexWorkload, PmIndex,
};

fn config() -> Config {
    let mut c = Config::new();
    c.pool_size(1 << 18)
        .max_ops_per_execution(20_000)
        .max_scenarios(2_000);
    c
}

fn check<I: PmIndex>(fault: I::Fault, n: usize) -> jaaru::CheckReport {
    ModelChecker::new(config()).check(&IndexWorkload::<I>::new(fault, n))
}

#[test]
fn all_fixed_recipe_structures_are_clean() {
    assert!(check::<Cceh>(CcehFault::None, 6).is_clean());
    assert!(check::<FastFair>(FastFairFault::None, 6).is_clean());
    assert!(check::<Part>(PartFault::None, 6).is_clean());
    assert!(check::<Pbwtree>(PbwtreeFault::None, 6).is_clean());
    assert!(check::<Pclht>(PclhtFault::None, 6).is_clean());
    assert!(check::<Pmasstree>(PmasstreeFault::None, 6).is_clean());
}

#[test]
fn all_18_seeded_bugs_are_found() {
    // (benchmark row id, found, any-kind) — mirrors Figure 13 ordering.
    let reports = vec![
        check::<Cceh>(CcehFault::CtorDirectoryHeaderNotFlushed, 4),
        check::<Cceh>(CcehFault::CtorDirectoryEntriesNotFlushed, 4),
        check::<Cceh>(CcehFault::CtorRootNotFlushed, 4),
        check::<FastFair>(FastFairFault::HeaderCtorNotFlushed, 4),
        check::<FastFair>(FastFairFault::EntryCtorNotFlushed, 6),
        check::<FastFair>(FastFairFault::BtreeCtorNotFlushed, 4),
        check::<Part>(PartFault::EpochNotPersistent, 4),
        check::<Part>(PartFault::TreeCtorNotFlushed, 4),
        check::<Part>(PartFault::VolatileRecoverySet, 4),
        check::<Pbwtree>(PbwtreeFault::GcRetireBeforeCommit, 8),
        check::<Pbwtree>(PbwtreeFault::GcMetaPointerNotFlushed, 4),
        check::<Pbwtree>(PbwtreeFault::GcMetadataNotFlushed, 8),
        // Bug 13 (AllocationMeta) is exercised separately below.
        check::<Pbwtree>(PbwtreeFault::CtorNotFlushed, 4),
        check::<Pclht>(PclhtFault::CtorNotFlushed, 4),
        check::<Pclht>(PclhtFault::TableObjectNotFlushed, 4),
        check::<Pclht>(PclhtFault::ArrayNotFlushed, 13),
        check::<Pmasstree>(PmasstreeFault::FlushedObjectInsteadOfPointer, 5),
    ];
    for (i, report) in reports.iter().enumerate() {
        assert!(!report.is_clean(), "seeded bug #{i} not found");
    }

    // Bug 13: allocator metadata constructor (shared PBump fault).
    let workload = IndexWorkload::<Pbwtree>::new(PbwtreeFault::None, 4).with_alloc_fault(
        jaaru_workloads::alloc::AllocFault {
            skip_cursor_flush: true,
        },
    );
    let report = ModelChecker::new(config()).check(&workload);
    assert!(!report.is_clean(), "allocator-metadata bug not found");
}

#[test]
fn symptom_classes_cover_the_paper_matrix() {
    // Figure 15 has three manifestation classes; each must be produced
    // by at least one seeded RECIPE bug.
    let loop_bug = check::<Cceh>(CcehFault::CtorDirectoryHeaderNotFlushed, 4);
    assert!(loop_bug
        .bugs
        .iter()
        .any(|b| b.kind == BugKind::InfiniteLoop));

    let segv_bug = check::<FastFair>(FastFairFault::BtreeCtorNotFlushed, 4);
    assert!(segv_bug
        .bugs
        .iter()
        .any(|b| b.kind == BugKind::IllegalAccess));

    let assert_bug = check::<Pclht>(PclhtFault::ArrayNotFlushed, 13);
    assert!(assert_bug
        .bugs
        .iter()
        .any(|b| matches!(b.kind, BugKind::AssertionFailure | BugKind::GuestPanic)));
}

#[test]
fn bug_reports_carry_reproduction_traces() {
    let report = check::<FastFair>(FastFairFault::BtreeCtorNotFlushed, 4);
    for bug in &report.bugs {
        assert!(!bug.trace.is_empty(), "decision trace missing: {bug}");
        assert!(!bug.crash_points.is_empty(), "crash point missing: {bug}");
        assert!(bug.execution_index >= 1, "bugs manifest in recovery: {bug}");
    }
}

#[test]
fn races_flag_the_missing_flush_sites() {
    // The §4 debugging aid: ctor-missing-flush bugs produce loads that
    // can read from multiple stores, with candidate store locations.
    let report = check::<Pclht>(PclhtFault::CtorNotFlushed, 4);
    assert!(!report.races.is_empty());
    assert!(report
        .races
        .iter()
        .any(|r| r.candidates.iter().any(|c| c.location.is_some())));
}
